//! Runtime-dispatched SIMD backends for the fused sweep's hot loops.
//!
//! The narrow tier's inner loops — the shift-merge lane adds, the
//! per-row OR-accumulate saturation check, and the 2-bit label-plane
//! decode — are all straight-line passes over contiguous `u64`/byte
//! buffers that LLVM already autovectorizes against the crate's baseline
//! target (SSE2 on `x86_64`). This module adds *explicit* AVX2 and SSE2
//! implementations behind cpuid-gated runtime dispatch, so a generic
//! binary gets 256-bit lanes on hosts that have them without recompiling
//! with `-C target-cpu=native`.
//!
//! ## Dispatch model
//!
//! The backend is chosen **once per process**: [`active_backend`]
//! inspects the `UCRA_KERNEL_BACKEND` environment variable (values
//! `scalar`, `sse2`, `avx2`; unknown values are ignored), clamps the
//! request to what the CPU actually supports, and falls back to
//! cpuid-based auto-detection (AVX2 → SSE2 → scalar). Benchmarks pin a
//! backend programmatically via [`pin_backend`] before first use.
//!
//! Every operation is exposed through a [`Kernels`] handle rather than a
//! bare [`Backend`] value: a `Kernels` can only be constructed by
//! clamping the requested backend to the host's capabilities
//! ([`Kernels::new`]), so the `unsafe` `#[target_feature]` calls behind
//! it are sound by construction and callers (including the per-sweep
//! forced-backend test paths) stay entirely safe.
//!
//! ## Why scalar stays the oracle
//!
//! The scalar implementations are always compiled, are the only path
//! taken under Miri (`cfg(miri)` disables the intrinsic modules
//! entirely) and on non-`x86_64` targets, and serve as the equivalence
//! oracle: all three operations are exact integer transforms (wrapping
//! `u64` adds that never wrap by the narrow-limit invariant, bitwise OR,
//! bit-field extraction), so every backend is **bit-identical** — the
//! forced-backend proptests in `tests/kernel_equivalence.rs` assert this
//! across all 48 strategies × 3 propagation modes, including the
//! escalation decisions taken at `row_fits` saturation sites.
//!
//! `unsafe` is confined to this module (the same `deny(unsafe_code)`
//! opt-out pattern as [`crate::pool`]); the rest of the crate cannot opt
//! out silently.
#![allow(unsafe_code)]

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// A SIMD instruction-set tier for the narrow-tier kernels, ordered from
/// most portable to most capable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// The always-compiled autovectorized Rust loops (the oracle).
    #[default]
    Scalar,
    /// 128-bit `x86_64` vectors (`_mm_add_epi64` et al.). Label decode
    /// stays scalar on this tier: the byte shuffle it wants (`pshufb`)
    /// is SSSE3, not SSE2.
    Sse2,
    /// 256-bit `x86_64` vectors (`_mm256_add_epi64` et al.).
    Avx2,
}

impl Backend {
    /// All backends, most portable first.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Sse2, Backend::Avx2];

    /// The stable lowercase name (`scalar` / `sse2` / `avx2`), as used by
    /// `UCRA_KERNEL_BACKEND`, stats surfaces and bench provenance.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Dense index (0/1/2) for per-backend counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this process can actually execute this backend's
    /// instructions (cpuid on `x86_64`; only [`Backend::Scalar`] under
    /// Miri or on other architectures).
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            Backend::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => false,
        }
    }

    /// This backend if the host supports it, otherwise the most capable
    /// supported tier below it.
    pub fn clamped(self) -> Backend {
        Backend::ALL
            .iter()
            .rev()
            .copied()
            .find(|b| *b <= self && b.is_supported())
            .unwrap_or(Backend::Scalar)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Backend {
    type Err = ();

    fn from_str(s: &str) -> Result<Backend, ()> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Backend::Scalar),
            "sse2" => Ok(Backend::Sse2),
            "avx2" => Ok(Backend::Avx2),
            _ => Err(()),
        }
    }
}

/// The most capable backend the host CPU supports, ignoring any
/// override. This is what bench provenance records alongside the
/// *selected* backend.
pub fn detected_backend() -> Backend {
    Backend::Avx2.clamped()
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();

fn choose_backend() -> Backend {
    match std::env::var("UCRA_KERNEL_BACKEND") {
        Ok(v) => match v.parse::<Backend>() {
            Ok(b) => b.clamped(),
            // An unknown value is ignored rather than fatal: the kernel
            // must keep serving, and the stats surface exposes what was
            // actually selected.
            Err(()) => detected_backend(),
        },
        Err(_) => detected_backend(),
    }
}

/// The process-wide backend, selected once on first use:
/// `UCRA_KERNEL_BACKEND` if set (clamped to host support), otherwise
/// the auto-detected best tier.
pub fn active_backend() -> Backend {
    *ACTIVE.get_or_init(choose_backend)
}

/// Pins the process-wide backend (clamped to host support) before first
/// use; benches use this for `--backend`. Returns the backend actually
/// active afterwards — the pre-existing selection if something already
/// forced the choice.
pub fn pin_backend(requested: Backend) -> Backend {
    let _ = ACTIVE.set(requested.clamped());
    active_backend()
}

/// A capability-checked handle to one backend's kernel implementations.
///
/// Constructing a `Kernels` clamps the requested backend to what the
/// host supports, which is exactly the invariant that makes the
/// `#[target_feature]` calls inside the dispatch methods sound — so the
/// methods themselves are safe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Kernels {
    backend: Backend,
}

impl Kernels {
    /// Kernels for `backend`, clamped to host support.
    pub fn new(backend: Backend) -> Kernels {
        Kernels {
            backend: backend.clamped(),
        }
    }

    /// Kernels for the process-wide [`active_backend`].
    pub fn active() -> Kernels {
        Kernels {
            backend: active_backend(),
        }
    }

    /// The always-supported scalar kernels.
    pub fn scalar() -> Kernels {
        Kernels {
            backend: Backend::Scalar,
        }
    }

    /// The backend these kernels execute.
    pub fn backend(self) -> Backend {
        self.backend
    }

    /// Lane-wise `dst[i] += src[i]` over equal-length `u64` slices — the
    /// shift-merge add at the heart of the narrow tier. Adds are
    /// unchecked/wrapping in every backend; the narrow-limit invariant
    /// guarantees they cannot wrap in kernel use.
    #[inline]
    pub fn add_lanes(self, dst: &mut [u64], src: &[u64]) {
        debug_assert_eq!(dst.len(), src.len(), "lane add shape");
        match self.backend {
            Backend::Scalar => scalar::add_lanes(dst, src),
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: `Kernels` construction clamped the backend to the
            // host's detected features.
            Backend::Sse2 => unsafe { x86::sse2_add_lanes(dst, src) },
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: as above.
            Backend::Avx2 => unsafe { x86::avx2_add_lanes(dst, src) },
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => scalar::add_lanes(dst, src),
        }
    }

    /// [`Self::add_lanes`] over all three count planes of a row span in
    /// one dispatched call — the form the sweep actually runs. Row
    /// spans are one distance histogram long (tens of cells), short
    /// enough that a per-plane `#[target_feature]` call boundary costs
    /// as much as the adds it guards; fusing pos/neg/def amortizes the
    /// dispatch 3× and hands the vector loop three independent
    /// dependency chains.
    #[inline]
    pub fn add_lanes3(
        self,
        pos: (&mut [u64], &[u64]),
        neg: (&mut [u64], &[u64]),
        def: (&mut [u64], &[u64]),
    ) {
        debug_assert!(
            pos.0.len() == pos.1.len()
                && neg.0.len() == neg.1.len()
                && def.0.len() == def.1.len()
                && pos.0.len() == neg.0.len()
                && pos.0.len() == def.0.len(),
            "fused lane add shape"
        );
        match self.backend {
            Backend::Scalar => {
                scalar::add_lanes(pos.0, pos.1);
                scalar::add_lanes(neg.0, neg.1);
                scalar::add_lanes(def.0, def.1);
            }
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: `Kernels` construction clamped the backend to the
            // host's detected features.
            Backend::Sse2 => unsafe { x86::sse2_add_lanes3(pos, neg, def) },
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: as above.
            Backend::Avx2 => unsafe { x86::avx2_add_lanes3(pos, neg, def) },
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => {
                scalar::add_lanes(pos.0, pos.1);
                scalar::add_lanes(neg.0, neg.1);
                scalar::add_lanes(def.0, def.1);
            }
        }
    }

    /// Issues cache prefetch hints for cells `at..at + len` of all three
    /// planes. The sweep calls this while computing a row's span (pass
    /// 1), so the parent rows it is about to merge (pass 2) are already
    /// in flight when the adds issue. The scalar oracle deliberately
    /// skips the hints: prefetching is part of the explicit backend's
    /// contract, and a hint cannot change results — out-of-range
    /// offsets are clamped away, and the hardware treats the rest as
    /// advice.
    #[inline]
    pub fn prefetch3(self, pos: &[u64], neg: &[u64], def: &[u64], at: usize, len: usize) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        if !matches!(self.backend, Backend::Scalar) {
            let end = (at + len).min(pos.len()).min(neg.len()).min(def.len());
            let mut i = at;
            // One hint per 64-byte line (8 u64 cells).
            while i < end {
                x86::prefetch3(pos.as_ptr(), neg.as_ptr(), def.as_ptr(), i);
                i += 8;
            }
        }
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        let _ = (pos, neg, def, at, len);
    }

    /// The shift-merge special case of [`Self::add_lanes3`]: source and
    /// destination spans live in the *same* three planes, `len` cells at
    /// offsets `src` and `dst` with `src + len <= dst`. Bounds are
    /// checked here once, so the intrinsic backends take six plain
    /// machine words — everything rides in argument registers, where the
    /// general slice-pair form spills half its arguments to the stack on
    /// every call (and the sweep makes one call per row merge).
    #[inline]
    pub fn add_shift3(
        self,
        pos: &mut [u64],
        neg: &mut [u64],
        def: &mut [u64],
        dst: usize,
        src: usize,
        len: usize,
    ) {
        let cap = pos.len().min(neg.len()).min(def.len());
        assert!(
            src + len <= dst && dst + len <= cap,
            "shift-merge spans must be disjoint and in bounds"
        );
        match self.backend {
            Backend::Scalar => {
                scalar::add_shift(pos, dst, src, len);
                scalar::add_shift(neg, dst, src, len);
                scalar::add_shift(def, dst, src, len);
            }
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: the assert above guarantees both spans of all
            // three planes are in bounds and disjoint; `Kernels`
            // construction clamped the backend to the host's features.
            Backend::Sse2 => unsafe {
                x86::sse2_add_shift3(
                    pos.as_mut_ptr(),
                    neg.as_mut_ptr(),
                    def.as_mut_ptr(),
                    dst,
                    src,
                    len,
                );
            },
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: as above.
            Backend::Avx2 => unsafe {
                x86::avx2_add_shift3(
                    pos.as_mut_ptr(),
                    neg.as_mut_ptr(),
                    def.as_mut_ptr(),
                    dst,
                    src,
                    len,
                );
            },
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => {
                scalar::add_shift(pos, dst, src, len);
                scalar::add_shift(neg, dst, src, len);
                scalar::add_shift(def, dst, src, len);
            }
        }
    }

    /// OR of every element — the saturation probe behind `row_fits`.
    /// The narrow limit is `2^k - 1`, so `or_reduce(row) <= limit` is an
    /// exact "no lane exceeds the ceiling" test.
    #[inline]
    pub fn or_reduce(self, xs: &[u64]) -> u64 {
        match self.backend {
            Backend::Scalar => scalar::or_reduce(xs),
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: `Kernels` construction clamped the backend to the
            // host's detected features.
            Backend::Sse2 => unsafe { x86::sse2_or_reduce(xs) },
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: as above.
            Backend::Avx2 => unsafe { x86::avx2_or_reduce(xs) },
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => scalar::or_reduce(xs),
        }
    }

    /// [`Self::or_reduce`] over a row's three equal-length count planes
    /// in one dispatched call — the saturation probe `row_fits` runs.
    /// Same rationale as [`Self::add_lanes3`]: the spans are short, so
    /// one call boundary instead of three is most of the win.
    #[inline]
    pub fn or_reduce3(self, a: &[u64], b: &[u64], c: &[u64]) -> u64 {
        debug_assert!(
            a.len() == b.len() && a.len() == c.len(),
            "fused or-reduce shape"
        );
        match self.backend {
            Backend::Scalar => scalar::or_reduce(a) | scalar::or_reduce(b) | scalar::or_reduce(c),
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: `Kernels` construction clamped the backend to the
            // host's detected features.
            Backend::Sse2 => unsafe { x86::sse2_or_reduce3(a, b, c) },
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: as above.
            Backend::Avx2 => unsafe { x86::avx2_or_reduce3(a, b, c) },
            #[cfg(not(all(target_arch = "x86_64", not(miri))))]
            _ => scalar::or_reduce(a) | scalar::or_reduce(b) | scalar::or_reduce(c),
        }
    }

    /// Decodes packed 2-bit label words into one byte per slot:
    /// `out[w * 32 + j] = (words[w] >> 2j) & 3`. `out` must be exactly
    /// `32 × words.len()` bytes. SSE2 lacks the byte shuffle this wants
    /// (`pshufb` is SSSE3), so that tier decodes scalar.
    #[inline]
    pub fn expand_labels(self, words: &[u64], out: &mut [u8]) {
        debug_assert_eq!(out.len(), words.len() * 32, "label decode shape");
        match self.backend {
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            // SAFETY: `Kernels` construction clamped the backend to the
            // host's detected features.
            Backend::Avx2 => unsafe { x86::avx2_expand_labels(words, out) },
            _ => scalar::expand_labels(words, out),
        }
    }
}

/// The autovectorized reference implementations: always compiled, the
/// only path under Miri / off `x86_64`, and the oracle every intrinsic
/// backend is pinned against.
mod scalar {
    /// Lane add, unrolled over exact 8-element chunks so the inner loop
    /// carries no bounds checks for LLVM to prove away.
    pub fn add_lanes(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let mut d = dst[..n].chunks_exact_mut(8);
        let mut s = src[..n].chunks_exact(8);
        for (dc, sc) in d.by_ref().zip(s.by_ref()) {
            for i in 0..8 {
                dc[i] = dc[i].wrapping_add(sc[i]);
            }
        }
        for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *x = x.wrapping_add(*y);
        }
    }

    /// Shift-merge within one plane:
    /// `lane[dst..dst + len] += lane[src..src + len]`, with
    /// `src + len <= dst` (the caller checked).
    pub fn add_shift(lane: &mut [u64], dst: usize, src: usize, len: usize) {
        let (head, tail) = lane.split_at_mut(dst);
        add_lanes(&mut tail[..len], &head[src..src + len]);
    }

    /// OR-reduce with independent accumulators per chunk position, so
    /// the reduction has no loop-carried serial dependency.
    pub fn or_reduce(xs: &[u64]) -> u64 {
        let mut acc = [0u64; 8];
        let mut it = xs.chunks_exact(8);
        for c in it.by_ref() {
            for i in 0..8 {
                acc[i] |= c[i];
            }
        }
        let tail = it.remainder().iter().fold(0u64, |a, &x| a | x);
        acc.into_iter().fold(tail, |a, x| a | x)
    }

    /// 2-bit field extraction, one output byte per field.
    pub fn expand_labels(words: &[u64], out: &mut [u8]) {
        for (&w, chunk) in words.iter().zip(out.chunks_exact_mut(32)) {
            let mut w = w;
            for b in chunk {
                *b = (w & 3) as u8;
                w >>= 2;
            }
        }
    }
}

/// The `x86_64` intrinsic backends. Compiled out under Miri (which
/// cannot execute vendor intrinsics) — the dispatcher routes everything
/// to [`scalar`] there, which is also what keeps the existing Miri CI
/// leg meaningful for the surrounding kernel code.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x86 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_castsi256_si128,
        _mm256_extracti128_si256, _mm256_loadu_si256, _mm256_or_si256, _mm256_set1_epi32,
        _mm256_set1_epi64x, _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256,
        _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_storeu_si256, _mm_add_epi64,
        _mm_cvtsi128_si64, _mm_loadu_si128, _mm_or_si128, _mm_prefetch, _mm_setzero_si128,
        _mm_storeu_si128, _mm_unpackhi_epi64, _MM_HINT_T0,
    };

    /// Issues a T0 (all-levels) prefetch hint for cell `at` of each of
    /// the three lane planes. Prefetch is architecturally a hint: it
    /// cannot fault even on a wild address, so this is safe to call
    /// with any in-slice base pointer and offset.
    #[inline]
    pub fn prefetch3(pos: *const u64, neg: *const u64, def: *const u64, at: usize) {
        // SAFETY: `_mm_prefetch` is a non-faulting hint (baseline SSE).
        unsafe {
            _mm_prefetch(pos.wrapping_add(at).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(neg.wrapping_add(at).cast::<i8>(), _MM_HINT_T0);
            _mm_prefetch(def.wrapping_add(at).cast::<i8>(), _MM_HINT_T0);
        }
    }

    /// # Safety
    /// The CPU must support AVX2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn avx2_add_lanes(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0usize;
        // 16 lanes (4 × 256-bit vectors) per iteration: enough to keep
        // both load ports busy without bloating the tail.
        while i + 16 <= n {
            let d0 = d.add(i).cast::<__m256i>();
            let s0 = s.add(i).cast::<__m256i>();
            let a0 = _mm256_add_epi64(_mm256_loadu_si256(d0), _mm256_loadu_si256(s0));
            let a1 = _mm256_add_epi64(
                _mm256_loadu_si256(d.add(i + 4).cast()),
                _mm256_loadu_si256(s.add(i + 4).cast()),
            );
            let a2 = _mm256_add_epi64(
                _mm256_loadu_si256(d.add(i + 8).cast()),
                _mm256_loadu_si256(s.add(i + 8).cast()),
            );
            let a3 = _mm256_add_epi64(
                _mm256_loadu_si256(d.add(i + 12).cast()),
                _mm256_loadu_si256(s.add(i + 12).cast()),
            );
            _mm256_storeu_si256(d0, a0);
            _mm256_storeu_si256(d.add(i + 4).cast(), a1);
            _mm256_storeu_si256(d.add(i + 8).cast(), a2);
            _mm256_storeu_si256(d.add(i + 12).cast(), a3);
            i += 16;
        }
        while i + 4 <= n {
            let dv = d.add(i).cast::<__m256i>();
            let sv = s.add(i).cast::<__m256i>();
            _mm256_storeu_si256(
                dv,
                _mm256_add_epi64(_mm256_loadu_si256(dv), _mm256_loadu_si256(sv)),
            );
            i += 4;
        }
        while i < n {
            *d.add(i) = (*d.add(i)).wrapping_add(*s.add(i));
            i += 1;
        }
    }

    /// # Safety
    /// The CPU must support SSE2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "sse2")]
    pub unsafe fn sse2_add_lanes(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let d = dst.as_mut_ptr();
        let s = src.as_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let a0 = _mm_add_epi64(
                _mm_loadu_si128(d.add(i).cast()),
                _mm_loadu_si128(s.add(i).cast()),
            );
            let a1 = _mm_add_epi64(
                _mm_loadu_si128(d.add(i + 2).cast()),
                _mm_loadu_si128(s.add(i + 2).cast()),
            );
            let a2 = _mm_add_epi64(
                _mm_loadu_si128(d.add(i + 4).cast()),
                _mm_loadu_si128(s.add(i + 4).cast()),
            );
            let a3 = _mm_add_epi64(
                _mm_loadu_si128(d.add(i + 6).cast()),
                _mm_loadu_si128(s.add(i + 6).cast()),
            );
            _mm_storeu_si128(d.add(i).cast(), a0);
            _mm_storeu_si128(d.add(i + 2).cast(), a1);
            _mm_storeu_si128(d.add(i + 4).cast(), a2);
            _mm_storeu_si128(d.add(i + 6).cast(), a3);
            i += 8;
        }
        while i < n {
            *d.add(i) = (*d.add(i)).wrapping_add(*s.add(i));
            i += 1;
        }
    }

    /// Fused three-plane lane add: one 256-bit vector per plane per
    /// iteration — three independent load/add/store chains, sized for
    /// the short row spans the sweep merges.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn avx2_add_lanes3(
        pos: (&mut [u64], &[u64]),
        neg: (&mut [u64], &[u64]),
        def: (&mut [u64], &[u64]),
    ) {
        let n = pos
            .0
            .len()
            .min(pos.1.len())
            .min(neg.0.len().min(neg.1.len()))
            .min(def.0.len().min(def.1.len()));
        let (pd, ps) = (pos.0.as_mut_ptr(), pos.1.as_ptr());
        let (nd, ns) = (neg.0.as_mut_ptr(), neg.1.as_ptr());
        let (dd, ds) = (def.0.as_mut_ptr(), def.1.as_ptr());
        let mut i = 0usize;
        while i + 4 <= n {
            let a = _mm256_add_epi64(
                _mm256_loadu_si256(pd.add(i).cast()),
                _mm256_loadu_si256(ps.add(i).cast()),
            );
            let b = _mm256_add_epi64(
                _mm256_loadu_si256(nd.add(i).cast()),
                _mm256_loadu_si256(ns.add(i).cast()),
            );
            let c = _mm256_add_epi64(
                _mm256_loadu_si256(dd.add(i).cast()),
                _mm256_loadu_si256(ds.add(i).cast()),
            );
            _mm256_storeu_si256(pd.add(i).cast(), a);
            _mm256_storeu_si256(nd.add(i).cast(), b);
            _mm256_storeu_si256(dd.add(i).cast(), c);
            i += 4;
        }
        while i < n {
            *pd.add(i) = (*pd.add(i)).wrapping_add(*ps.add(i));
            *nd.add(i) = (*nd.add(i)).wrapping_add(*ns.add(i));
            *dd.add(i) = (*dd.add(i)).wrapping_add(*ds.add(i));
            i += 1;
        }
    }

    /// # Safety
    /// The CPU must support SSE2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "sse2")]
    pub unsafe fn sse2_add_lanes3(
        pos: (&mut [u64], &[u64]),
        neg: (&mut [u64], &[u64]),
        def: (&mut [u64], &[u64]),
    ) {
        let n = pos
            .0
            .len()
            .min(pos.1.len())
            .min(neg.0.len().min(neg.1.len()))
            .min(def.0.len().min(def.1.len()));
        let (pd, ps) = (pos.0.as_mut_ptr(), pos.1.as_ptr());
        let (nd, ns) = (neg.0.as_mut_ptr(), neg.1.as_ptr());
        let (dd, ds) = (def.0.as_mut_ptr(), def.1.as_ptr());
        let mut i = 0usize;
        while i + 2 <= n {
            let a = _mm_add_epi64(
                _mm_loadu_si128(pd.add(i).cast()),
                _mm_loadu_si128(ps.add(i).cast()),
            );
            let b = _mm_add_epi64(
                _mm_loadu_si128(nd.add(i).cast()),
                _mm_loadu_si128(ns.add(i).cast()),
            );
            let c = _mm_add_epi64(
                _mm_loadu_si128(dd.add(i).cast()),
                _mm_loadu_si128(ds.add(i).cast()),
            );
            _mm_storeu_si128(pd.add(i).cast(), a);
            _mm_storeu_si128(nd.add(i).cast(), b);
            _mm_storeu_si128(dd.add(i).cast(), c);
            i += 2;
        }
        while i < n {
            *pd.add(i) = (*pd.add(i)).wrapping_add(*ps.add(i));
            *nd.add(i) = (*nd.add(i)).wrapping_add(*ns.add(i));
            *dd.add(i) = (*dd.add(i)).wrapping_add(*ds.add(i));
            i += 1;
        }
    }

    /// # Safety
    /// The CPU must support AVX2, and for each of the three plane
    /// pointers both `src..src + n` and `dst..dst + n` must be in
    /// bounds with `src + n <= dst` (see [`super::Kernels::add_shift3`],
    /// which checks all of this before the call).
    #[target_feature(enable = "avx2")]
    pub unsafe fn avx2_add_shift3(
        p: *mut u64,
        q: *mut u64,
        r: *mut u64,
        dst: usize,
        src: usize,
        n: usize,
    ) {
        let mut i = 0usize;
        // 8 cells per plane per iteration (two 256-bit vectors each):
        // rows average a few dozen cells, so halving the trip count
        // meaningfully cuts per-iteration pointer/branch overhead while
        // the six independent add chains hide load latency.
        while i + 8 <= n {
            let a0 = _mm256_add_epi64(
                _mm256_loadu_si256(p.add(dst + i).cast()),
                _mm256_loadu_si256(p.add(src + i).cast()),
            );
            let a1 = _mm256_add_epi64(
                _mm256_loadu_si256(p.add(dst + i + 4).cast()),
                _mm256_loadu_si256(p.add(src + i + 4).cast()),
            );
            let b0 = _mm256_add_epi64(
                _mm256_loadu_si256(q.add(dst + i).cast()),
                _mm256_loadu_si256(q.add(src + i).cast()),
            );
            let b1 = _mm256_add_epi64(
                _mm256_loadu_si256(q.add(dst + i + 4).cast()),
                _mm256_loadu_si256(q.add(src + i + 4).cast()),
            );
            let c0 = _mm256_add_epi64(
                _mm256_loadu_si256(r.add(dst + i).cast()),
                _mm256_loadu_si256(r.add(src + i).cast()),
            );
            let c1 = _mm256_add_epi64(
                _mm256_loadu_si256(r.add(dst + i + 4).cast()),
                _mm256_loadu_si256(r.add(src + i + 4).cast()),
            );
            _mm256_storeu_si256(p.add(dst + i).cast(), a0);
            _mm256_storeu_si256(p.add(dst + i + 4).cast(), a1);
            _mm256_storeu_si256(q.add(dst + i).cast(), b0);
            _mm256_storeu_si256(q.add(dst + i + 4).cast(), b1);
            _mm256_storeu_si256(r.add(dst + i).cast(), c0);
            _mm256_storeu_si256(r.add(dst + i + 4).cast(), c1);
            i += 8;
        }
        if i + 4 <= n {
            let a = _mm256_add_epi64(
                _mm256_loadu_si256(p.add(dst + i).cast()),
                _mm256_loadu_si256(p.add(src + i).cast()),
            );
            let b = _mm256_add_epi64(
                _mm256_loadu_si256(q.add(dst + i).cast()),
                _mm256_loadu_si256(q.add(src + i).cast()),
            );
            let c = _mm256_add_epi64(
                _mm256_loadu_si256(r.add(dst + i).cast()),
                _mm256_loadu_si256(r.add(src + i).cast()),
            );
            _mm256_storeu_si256(p.add(dst + i).cast(), a);
            _mm256_storeu_si256(q.add(dst + i).cast(), b);
            _mm256_storeu_si256(r.add(dst + i).cast(), c);
            i += 4;
        }
        while i < n {
            *p.add(dst + i) = (*p.add(dst + i)).wrapping_add(*p.add(src + i));
            *q.add(dst + i) = (*q.add(dst + i)).wrapping_add(*q.add(src + i));
            *r.add(dst + i) = (*r.add(dst + i)).wrapping_add(*r.add(src + i));
            i += 1;
        }
    }

    /// # Safety
    /// The CPU must support SSE2; bounds contract as in
    /// [`avx2_add_shift3`].
    #[target_feature(enable = "sse2")]
    pub unsafe fn sse2_add_shift3(
        p: *mut u64,
        q: *mut u64,
        r: *mut u64,
        dst: usize,
        src: usize,
        n: usize,
    ) {
        let mut i = 0usize;
        while i + 2 <= n {
            let a = _mm_add_epi64(
                _mm_loadu_si128(p.add(dst + i).cast()),
                _mm_loadu_si128(p.add(src + i).cast()),
            );
            let b = _mm_add_epi64(
                _mm_loadu_si128(q.add(dst + i).cast()),
                _mm_loadu_si128(q.add(src + i).cast()),
            );
            let c = _mm_add_epi64(
                _mm_loadu_si128(r.add(dst + i).cast()),
                _mm_loadu_si128(r.add(src + i).cast()),
            );
            _mm_storeu_si128(p.add(dst + i).cast(), a);
            _mm_storeu_si128(q.add(dst + i).cast(), b);
            _mm_storeu_si128(r.add(dst + i).cast(), c);
            i += 2;
        }
        while i < n {
            *p.add(dst + i) = (*p.add(dst + i)).wrapping_add(*p.add(src + i));
            *q.add(dst + i) = (*q.add(dst + i)).wrapping_add(*q.add(src + i));
            *r.add(dst + i) = (*r.add(dst + i)).wrapping_add(*r.add(src + i));
            i += 1;
        }
    }

    /// # Safety
    /// The CPU must support AVX2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn avx2_or_reduce(xs: &[u64]) -> u64 {
        let n = xs.len();
        let p = xs.as_ptr();
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 8 <= n {
            acc0 = _mm256_or_si256(acc0, _mm256_loadu_si256(p.add(i).cast()));
            acc1 = _mm256_or_si256(acc1, _mm256_loadu_si256(p.add(i + 4).cast()));
            i += 8;
        }
        if i + 4 <= n {
            acc0 = _mm256_or_si256(acc0, _mm256_loadu_si256(p.add(i).cast()));
            i += 4;
        }
        let acc = _mm256_or_si256(acc0, acc1);
        let mut seen = fold128(_mm_or_si128(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256(acc, 1),
        ));
        while i < n {
            seen |= *p.add(i);
            i += 1;
        }
        seen
    }

    /// # Safety
    /// The CPU must support SSE2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "sse2")]
    pub unsafe fn sse2_or_reduce(xs: &[u64]) -> u64 {
        let n = xs.len();
        let p = xs.as_ptr();
        let mut acc0 = _mm_setzero_si128();
        let mut acc1 = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 4 <= n {
            acc0 = _mm_or_si128(acc0, _mm_loadu_si128(p.add(i).cast()));
            acc1 = _mm_or_si128(acc1, _mm_loadu_si128(p.add(i + 2).cast()));
            i += 4;
        }
        let mut seen = fold128(_mm_or_si128(acc0, acc1));
        while i < n {
            seen |= *p.add(i);
            i += 1;
        }
        seen
    }

    /// Fused three-plane OR-reduce for `row_fits`: one accumulator fed
    /// by all three planes in lockstep.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn avx2_or_reduce3(a: &[u64], b: &[u64], c: &[u64]) -> u64 {
        let n = a.len().min(b.len()).min(c.len());
        let (pa, pb, pc) = (a.as_ptr(), b.as_ptr(), c.as_ptr());
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            acc0 = _mm256_or_si256(acc0, _mm256_loadu_si256(pa.add(i).cast()));
            acc1 = _mm256_or_si256(acc1, _mm256_loadu_si256(pb.add(i).cast()));
            acc2 = _mm256_or_si256(acc2, _mm256_loadu_si256(pc.add(i).cast()));
            i += 4;
        }
        let acc = _mm256_or_si256(_mm256_or_si256(acc0, acc1), acc2);
        let mut seen = fold128(_mm_or_si128(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256(acc, 1),
        ));
        while i < n {
            seen |= *pa.add(i) | *pb.add(i) | *pc.add(i);
            i += 1;
        }
        seen
    }

    /// # Safety
    /// The CPU must support SSE2 (callers hold a clamped [`super::Kernels`]).
    #[target_feature(enable = "sse2")]
    pub unsafe fn sse2_or_reduce3(a: &[u64], b: &[u64], c: &[u64]) -> u64 {
        let n = a.len().min(b.len()).min(c.len());
        let (pa, pb, pc) = (a.as_ptr(), b.as_ptr(), c.as_ptr());
        let mut acc0 = _mm_setzero_si128();
        let mut acc1 = _mm_setzero_si128();
        let mut acc2 = _mm_setzero_si128();
        let mut i = 0usize;
        while i + 2 <= n {
            acc0 = _mm_or_si128(acc0, _mm_loadu_si128(pa.add(i).cast()));
            acc1 = _mm_or_si128(acc1, _mm_loadu_si128(pb.add(i).cast()));
            acc2 = _mm_or_si128(acc2, _mm_loadu_si128(pc.add(i).cast()));
            i += 2;
        }
        let mut seen = fold128(_mm_or_si128(_mm_or_si128(acc0, acc1), acc2));
        while i < n {
            seen |= *pa.add(i) | *pb.add(i) | *pc.add(i);
            i += 1;
        }
        seen
    }

    /// OR of the two `u64` halves of a 128-bit register.
    #[inline(always)]
    fn fold128(v: __m128i) -> u64 {
        // SAFETY: both intrinsics are plain SSE2 data movement; SSE2 is
        // statically guaranteed by the crate's x86_64 baseline target.
        unsafe {
            (_mm_cvtsi128_si64(v) as u64) | (_mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)) as u64)
        }
    }

    /// One packed word explodes to exactly one 256-bit store: broadcast
    /// the word, `pshufb`-replicate each source byte across the four
    /// output bytes that decode from it, shift each replica into place
    /// and mask to the 2-bit code, then blend the four shifted planes by
    /// byte position.
    ///
    /// # Safety
    /// The CPU must support AVX2 (callers hold a clamped [`super::Kernels`]);
    /// `out` must be exactly `32 × words.len()` bytes (checked by the
    /// dispatcher's debug assert and re-asserted here).
    #[target_feature(enable = "avx2")]
    pub unsafe fn avx2_expand_labels(words: &[u64], out: &mut [u8]) {
        assert_eq!(out.len(), words.len() * 32, "label decode shape");
        // Within each 128-bit lane `pshufb` indexes lane-locally, and the
        // broadcast word occupies bytes 0..8 of both lanes: lane 0 feeds
        // output bytes 0..16 (source bytes 0..4), lane 1 feeds output
        // bytes 16..32 (source bytes 4..8).
        #[rustfmt::skip]
        let idx = _mm256_setr_epi8(
            0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
            4, 4, 4, 4, 5, 5, 5, 5, 6, 6, 6, 6, 7, 7, 7, 7,
        );
        let m3 = _mm256_set1_epi8(3);
        let pos0 = _mm256_set1_epi32(0x0000_00ff);
        let pos1 = _mm256_set1_epi32(0x0000_ff00);
        let pos2 = _mm256_set1_epi32(0x00ff_0000);
        let pos3 = _mm256_set1_epi32(0xff00_0000u32 as i32);
        let o = out.as_mut_ptr();
        for (wi, &w) in words.iter().enumerate() {
            let bytes = _mm256_shuffle_epi8(_mm256_set1_epi64x(w as i64), idx);
            // Byte j of the output wants bits 2(j%4)..2(j%4)+2 of source
            // byte j/4. `srli_epi16` smears bits across the low byte of
            // each 16-bit pair, but the `& 3` mask keeps only the two
            // bits that came from the byte itself.
            let b0 = _mm256_and_si256(bytes, m3);
            let b1 = _mm256_and_si256(_mm256_srli_epi16(bytes, 2), m3);
            let b2 = _mm256_and_si256(_mm256_srli_epi16(bytes, 4), m3);
            let b3 = _mm256_and_si256(_mm256_srli_epi16(bytes, 6), m3);
            let r = _mm256_or_si256(
                _mm256_or_si256(_mm256_and_si256(b0, pos0), _mm256_and_si256(b1, pos1)),
                _mm256_or_si256(_mm256_and_si256(b2, pos2), _mm256_and_si256(b3, pos3)),
            );
            _mm256_storeu_si256(o.add(wi * 32).cast(), r);
        }
    }
}

/// A 64-byte (cache-line) aligned, zero-initialising `u64` buffer — the
/// narrow tier's lane storage. `Vec<u64>` only guarantees 8-byte
/// alignment, so the three parallel lanes could start mid-line and every
/// vector op would straddle; this keeps each lane's base on its own
/// cache line. Deliberately minimal: the kernel only ever zero-extends,
/// truncates and shrinks.
pub struct AlignedVec {
    ptr: std::ptr::NonNull<u64>,
    len: usize,
    cap: usize,
}

/// Cache-line alignment for lane buffers.
const LANE_ALIGN: usize = 64;

impl AlignedVec {
    /// An empty buffer; no allocation until first growth.
    pub const fn new() -> AlignedVec {
        AlignedVec {
            ptr: std::ptr::NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    fn layout(cap: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(cap * std::mem::size_of::<u64>(), LANE_ALIGN)
            .expect("lane buffer layout")
    }

    /// Elements currently live.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Retained capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Reallocates to exactly `new_cap` elements (which must hold the
    /// current `len`), preserving live contents.
    fn realloc_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap >= self.len);
        if new_cap == self.cap {
            return;
        }
        if new_cap == 0 {
            // SAFETY: `cap > 0` here (new_cap != cap), so `ptr` was
            // allocated with `layout(cap)`.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr().cast(), Self::layout(self.cap)) };
            self.ptr = std::ptr::NonNull::dangling();
            self.cap = 0;
            return;
        }
        let new_ptr = if self.cap == 0 {
            // SAFETY: `new_cap > 0` gives a non-zero-size layout.
            unsafe { std::alloc::alloc(Self::layout(new_cap)) }
        } else {
            // SAFETY: `ptr` was allocated with `layout(cap)`; realloc
            // preserves the layout's alignment and the first
            // `min(old, new)` bytes.
            unsafe {
                std::alloc::realloc(
                    self.ptr.as_ptr().cast(),
                    Self::layout(self.cap),
                    new_cap * std::mem::size_of::<u64>(),
                )
            }
        };
        let Some(ptr) = std::ptr::NonNull::new(new_ptr.cast::<u64>()) else {
            std::alloc::handle_alloc_error(Self::layout(new_cap));
        };
        self.ptr = ptr;
        self.cap = new_cap;
    }

    /// Grows or truncates to `new_len`, zero-filling any new elements.
    /// Growth is amortised (doubling), like `Vec`.
    pub fn resize_zeroed(&mut self, new_len: usize) {
        if new_len > self.cap {
            self.realloc_to(new_len.max(self.cap * 2).max(8));
        }
        if new_len > self.len {
            // SAFETY: `len..new_len` is within the (re)allocated block.
            unsafe {
                std::ptr::write_bytes(self.ptr.as_ptr().add(self.len), 0, new_len - self.len);
            }
        }
        self.len = new_len;
    }

    /// Appends a copy of elements `src..src + n` at the tail. Growth is
    /// amortised (doubling), like `Vec`. The arena kernels use this to
    /// initialise a fresh row as a straight copy of its first source row
    /// instead of a zero-fill followed by an add-onto-zeros pass.
    pub fn extend_from_within(&mut self, src: usize, n: usize) {
        assert!(src + n <= self.len, "copy source out of bounds");
        let new_len = self.len + n;
        if new_len > self.cap {
            self.realloc_to(new_len.max(self.cap * 2).max(8));
        }
        // SAFETY: `src + n <= len` (asserted) and `len + n <= cap`; the
        // ranges cannot overlap because the destination starts at `len`,
        // at or above the source's end.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.ptr.as_ptr().add(src),
                self.ptr.as_ptr().add(self.len),
                n,
            );
        }
        self.len = new_len;
    }

    /// Appends a copy of `xs` at the tail; growth as in
    /// [`AlignedVec::extend_from_within`].
    pub fn extend_from_slice(&mut self, xs: &[u64]) {
        let new_len = self.len + xs.len();
        if new_len > self.cap {
            self.realloc_to(new_len.max(self.cap * 2).max(8));
        }
        // SAFETY: the tail holds `xs.len()` spare elements after the
        // reserve above, and a borrowed source cannot overlap `&mut self`.
        unsafe {
            std::ptr::copy_nonoverlapping(xs.as_ptr(), self.ptr.as_ptr().add(self.len), xs.len());
        }
        self.len = new_len;
    }

    /// Drops all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Shrinks retained capacity toward `min_cap` (never below `len`),
    /// mirroring `Vec::shrink_to`.
    pub fn shrink_to(&mut self, min_cap: usize) {
        let target = min_cap.max(self.len);
        if self.cap > target {
            self.realloc_to(target);
        }
    }

    /// The live elements.
    pub fn as_slice(&self) -> &[u64] {
        // SAFETY: `ptr` covers `cap >= len` initialised-for-`len`
        // elements; for `len == 0` a dangling-but-aligned pointer is
        // valid for an empty slice.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The live elements, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        // SAFETY: as in `as_slice`, plus `&mut self` gives uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Copies a slice into a fresh exactly-sized aligned buffer.
    pub fn from_slice(xs: &[u64]) -> AlignedVec {
        let mut v = AlignedVec::new();
        if !xs.is_empty() {
            v.realloc_to(xs.len());
            // SAFETY: the fresh block holds `xs.len()` elements and
            // cannot overlap the borrowed source.
            unsafe {
                std::ptr::copy_nonoverlapping(xs.as_ptr(), v.ptr.as_ptr(), xs.len());
            }
            v.len = xs.len();
        }
        v
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: `ptr` was allocated with `layout(cap)`.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr().cast(), Self::layout(self.cap)) };
        }
    }
}

// SAFETY: `AlignedVec` owns its allocation exclusively and `u64` is
// `Send + Sync`; the raw pointer is never shared outside `&`/`&mut`
// borrows of the vector itself.
unsafe impl Send for AlignedVec {}
// SAFETY: as above — shared access only ever reads through `&self`.
unsafe impl Sync for AlignedVec {}

impl Default for AlignedVec {
    fn default() -> AlignedVec {
        AlignedVec::new()
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> AlignedVec {
        AlignedVec::from_slice(self.as_slice())
    }
}

impl std::ops::Deref for AlignedVec {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &AlignedVec) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AlignedVec {}

impl FromIterator<u64> for AlignedVec {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> AlignedVec {
        AlignedVec::from_slice(&iter.into_iter().collect::<Vec<u64>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift stream — no RNG dependency needed for
    /// op-equivalence data.
    fn xorshift_stream(mut seed: u64, n: usize) -> Vec<u64> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            })
            .collect()
    }

    fn supported_kernels() -> Vec<Kernels> {
        Backend::ALL
            .iter()
            .filter(|b| b.is_supported())
            .map(|&b| Kernels::new(b))
            .collect()
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(b.as_str().parse::<Backend>(), Ok(b));
            assert_eq!(b.to_string(), b.as_str());
        }
        assert_eq!("AVX2".parse::<Backend>(), Ok(Backend::Avx2));
        assert_eq!(" sse2 ".parse::<Backend>(), Ok(Backend::Sse2));
        assert!("avx512".parse::<Backend>().is_err());
    }

    #[test]
    fn clamping_never_exceeds_support() {
        for b in Backend::ALL {
            let c = b.clamped();
            assert!(c.is_supported());
            assert!(c <= b, "clamp may only lower the tier");
        }
        assert_eq!(Backend::Scalar.clamped(), Backend::Scalar);
        assert!(detected_backend().is_supported());
    }

    #[test]
    fn active_backend_is_supported_and_stable() {
        let first = active_backend();
        assert!(first.is_supported());
        assert_eq!(active_backend(), first, "selection is once-per-process");
        // Pinning after first use cannot change the selection.
        assert_eq!(pin_backend(Backend::Scalar), first);
    }

    #[cfg(miri)]
    #[test]
    fn miri_takes_the_scalar_path() {
        assert_eq!(detected_backend(), Backend::Scalar);
        assert_eq!(active_backend(), Backend::Scalar);
        assert_eq!(Kernels::new(Backend::Avx2).backend(), Backend::Scalar);
    }

    #[test]
    fn add_lanes_matches_scalar_on_every_backend() {
        let src = xorshift_stream(0x9e37_79b9_7f4a_7c15, 133);
        let base = xorshift_stream(0xd1b5_4a32_d192_ed03, 133);
        // Every length hits a different mix of vector body and tail.
        for len in [0usize, 1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 64, 133] {
            let mut want = base[..len].to_vec();
            scalar::add_lanes(&mut want, &src[..len]);
            for k in supported_kernels() {
                let mut got = base[..len].to_vec();
                k.add_lanes(&mut got, &src[..len]);
                assert_eq!(got, want, "backend {} len {len}", k.backend());
            }
        }
    }

    #[test]
    fn add_lanes3_matches_three_scalar_adds_on_every_backend() {
        let srcs = [
            xorshift_stream(0x9e37_79b9_7f4a_7c15, 133),
            xorshift_stream(0xd1b5_4a32_d192_ed03, 133),
            xorshift_stream(0xa076_1d64_78bd_642f, 133),
        ];
        let bases = [
            xorshift_stream(0xe703_7ed1_a0b4_28db, 133),
            xorshift_stream(0x8ebc_6af0_9c88_c6e3, 133),
            xorshift_stream(0x5899_65cc_7537_4cc3, 133),
        ];
        for len in [0usize, 1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 64, 133] {
            let mut want: Vec<Vec<u64>> = bases.iter().map(|b| b[..len].to_vec()).collect();
            for (w, s) in want.iter_mut().zip(&srcs) {
                scalar::add_lanes(w, &s[..len]);
            }
            for k in supported_kernels() {
                let mut got: Vec<Vec<u64>> = bases.iter().map(|b| b[..len].to_vec()).collect();
                let [p, rest @ ..] = &mut got[..] else {
                    unreachable!()
                };
                let [n, d] = rest else { unreachable!() };
                k.add_lanes3(
                    (p, &srcs[0][..len]),
                    (n, &srcs[1][..len]),
                    (d, &srcs[2][..len]),
                );
                assert_eq!(got, want, "backend {} len {len}", k.backend());
            }
        }
    }

    #[test]
    fn add_shift3_matches_scalar_on_every_backend() {
        let planes = [
            xorshift_stream(0x1f83_d9ab_fb41_bd6b, 300),
            xorshift_stream(0x5be0_cd19_137e_2179, 300),
            xorshift_stream(0x6a09_e667_f3bc_c908, 300),
        ];
        for len in [0usize, 1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 64, 133] {
            let (src, dst) = (5usize, 160usize);
            let mut want: Vec<Vec<u64>> = planes.iter().map(|p| p.clone()).collect();
            for w in &mut want {
                scalar::add_shift(w, dst, src, len);
            }
            for k in supported_kernels() {
                let mut got: Vec<Vec<u64>> = planes.iter().map(|p| p.clone()).collect();
                let [p, rest @ ..] = &mut got[..] else {
                    unreachable!()
                };
                let [n, d] = rest else { unreachable!() };
                k.add_shift3(p, n, d, dst, src, len);
                assert_eq!(got, want, "backend {} len {len}", k.backend());
            }
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn add_shift3_rejects_overlapping_spans() {
        let mut a = vec![0u64; 32];
        let mut b = vec![0u64; 32];
        let mut c = vec![0u64; 32];
        Kernels::scalar().add_shift3(&mut a, &mut b, &mut c, 8, 4, 8);
    }

    #[test]
    fn or_reduce3_matches_scalar_on_every_backend() {
        let a = xorshift_stream(0x2545_f491_4f6c_dd1d, 133);
        let b = xorshift_stream(0x9e6c_63d0_985b_49c5, 133);
        let c = xorshift_stream(0x5851_f42d_4c95_7f2d, 133);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33, 133] {
            let want = scalar::or_reduce(&a[..len])
                | scalar::or_reduce(&b[..len])
                | scalar::or_reduce(&c[..len]);
            for k in supported_kernels() {
                assert_eq!(
                    k.or_reduce3(&a[..len], &b[..len], &c[..len]),
                    want,
                    "backend {} len {len}",
                    k.backend()
                );
            }
        }
    }

    #[test]
    fn or_reduce_matches_scalar_on_every_backend() {
        let xs = xorshift_stream(0xa076_1d64_78bd_642f, 133);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33, 133] {
            let want = scalar::or_reduce(&xs[..len]);
            assert_eq!(want, xs[..len].iter().fold(0, |a, &x| a | x));
            for k in supported_kernels() {
                assert_eq!(
                    k.or_reduce(&xs[..len]),
                    want,
                    "backend {} len {len}",
                    k.backend()
                );
            }
        }
    }

    #[test]
    fn expand_labels_matches_scalar_on_every_backend() {
        for words in [
            vec![],
            vec![0u64],
            vec![u64::MAX],
            vec![0x1b1b_1b1b_1b1b_1b1b],
            xorshift_stream(0x2545_f491_4f6c_dd1d, 9),
        ] {
            let mut want = vec![0u8; words.len() * 32];
            scalar::expand_labels(&words, &mut want);
            for (j, &b) in want.iter().enumerate() {
                assert_eq!(u64::from(b), (words[j / 32] >> (2 * (j % 32))) & 3);
            }
            for k in supported_kernels() {
                let mut got = vec![0xffu8; words.len() * 32];
                k.expand_labels(&words, &mut got);
                assert_eq!(got, want, "backend {}", k.backend());
            }
        }
    }

    #[test]
    fn aligned_vec_is_cache_line_aligned_and_vec_like() {
        let mut v = AlignedVec::new();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 0);
        v.resize_zeroed(5);
        assert_eq!(v.as_slice(), &[0; 5]);
        assert_eq!(v.as_ptr() as usize % LANE_ALIGN, 0, "64-byte aligned");
        v[3] = 42;
        v.resize_zeroed(200);
        assert_eq!(v.as_ptr() as usize % LANE_ALIGN, 0, "aligned after growth");
        assert_eq!(v[3], 42, "growth preserves contents");
        assert_eq!(v[199], 0, "growth zero-fills");
        let cap = v.capacity();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap, "clear keeps capacity");
        v.resize_zeroed(8);
        assert_eq!(&v[..], &[0; 8], "stale contents are re-zeroed");
        v.shrink_to(16);
        assert!(v.capacity() >= 8 && v.capacity() <= 16);
        v.shrink_to(0);
        assert_eq!(v.capacity(), 8, "shrink never drops below len");
    }

    #[test]
    fn aligned_vec_truncating_resize_then_regrow_rezeroes() {
        let mut v = AlignedVec::from_slice(&[7; 12]);
        v.resize_zeroed(4);
        assert_eq!(&v[..], &[7; 4]);
        v.resize_zeroed(12);
        assert_eq!(&v[..4], &[7; 4]);
        assert_eq!(&v[4..], &[0; 8], "regrown tail is zeroed");
    }

    #[test]
    fn aligned_vec_clone_collect_and_eq() {
        let v: AlignedVec = (0u64..100).collect();
        assert_eq!(v.len(), 100);
        assert_eq!(v.as_ptr() as usize % LANE_ALIGN, 0);
        let w = v.clone();
        assert_eq!(v, w);
        assert_ne!(w, AlignedVec::new());
        assert_eq!(AlignedVec::new(), AlignedVec::from_slice(&[]));
        assert_eq!(format!("{:?}", AlignedVec::from_slice(&[1, 2])), "[1, 2]");
    }
}
