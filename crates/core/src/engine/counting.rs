//! The counting propagation engine: a dynamic program that is
//! bag-equivalent to Function `Propagate()` but polynomial.
//!
//! ## Idea
//!
//! `Resolve()` never inspects individual `allRights` rows — it only counts
//! them and filters them by distance. The bag of per-path records reaching
//! a subject `v` satisfies the recurrence
//!
//! ```text
//! rights(v) = own(v) ⊎ ⨄_{p ∈ parents(v)} shift₁(rights(p))
//! ```
//!
//! where `own(v)` is `v`'s explicit label (or a root default) at distance
//! 0 and `shift₁` adds one edge to every record's distance. Representing
//! the bag as a [`DistanceHistogram`] (per-`(distance, mode)` path counts)
//! turns the exponential path enumeration into one sweep over the DAG in
//! topological order: `O(Σ_v |strata(v)| · fan-out(v))`, bounded by
//! `O(V · depth · E)` and in practice near-linear.
//!
//! This is the realisation of the paper's last future-work item
//! ("optimize the Resolve() algorithm for special purposes") without
//! giving up any strategy: all 48 instances read the same histogram.
//!
//! This module is the *reference* single-pair sweep over sparse
//! [`DistanceHistogram`]s. The production bulk path is the columnar
//! kernel in [`kernel`](crate::engine::kernel), which runs the same
//! recurrence over flat arenas — on tiered `u64` count lanes with a
//! checked-`u128` escalation path — and is property-tested equivalent
//! to this one.
//!
//! ## Propagation modes (paper future work #3)
//!
//! The paper suggests three modes for what happens when a propagating
//! authorization meets another explicit authorization on its path;
//! [`PropagationMode`] implements all three. The paper's own semantics is
//! [`PropagationMode::Both`].

use crate::engine::DistanceHistogram;
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Mode;
use ucra_graph::traverse;

/// What happens when an authorization propagating along a path meets a
/// subject that carries its own explicit authorization (paper §6, third
/// future direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PropagationMode {
    /// Both the met and the travelling authorization continue — the
    /// paper's standard semantics (Fig. 5 behaves this way).
    #[default]
    Both,
    /// The met (more specific) authorization replaces everything arriving
    /// from above: an explicitly labeled subject forwards only its own
    /// label.
    SecondWins,
    /// The travelling (more general) authorization suppresses the met
    /// one: a subject's own label starts propagating only if nothing
    /// arrives from above.
    FirstWins,
}

/// The `allRights` histogram of one subject for ⟨`subject`, `object`,
/// `right`⟩, computed over the ancestor sub-graph only.
///
/// Bag-equivalent to [`crate::engine::path_enum::propagate`] under
/// [`PropagationMode::Both`].
pub fn histogram(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
    mode: PropagationMode,
) -> Result<DistanceHistogram, CoreError> {
    let sub = hierarchy.ancestor_subgraph(subject)?;
    // Re-key the EACM slice into sub-graph ids via a closure-based lookup.
    let out = sweep(&sub.dag, mode, |v| {
        eacm.label(sub.original_id(v), object, right)
            .map(Mode::from)
    })?;
    Ok(out[sub.sink.index()].clone())
}

/// The `allRights` histograms of **every** subject for one `(object,
/// right)` pair, computed by a single sweep over the full hierarchy.
///
/// Because `rights(v)` depends only on `v`'s ancestors, the full-graph
/// table restricted to any ancestor sub-graph coincides with the
/// per-query computation — this is what makes the memoised resolver
/// (paper future work #1) sound. Entry `i` corresponds to the subject
/// with index `i`.
///
/// Since the columnar kernel landed this is a thin wrapper over a
/// one-column [`crate::engine::kernel::FusedSweep`]; the original
/// BTreeMap-per-node implementation survives as
/// [`histograms_all_reference`], the equivalence/bench oracle.
pub fn histograms_all(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    object: ObjectId,
    right: RightId,
    mode: PropagationMode,
) -> Result<Vec<DistanceHistogram>, CoreError> {
    let fused =
        crate::engine::kernel::FusedSweep::compute(hierarchy, eacm, &[(object, right)], mode)?;
    Ok(fused.table(0))
}

/// The original node-at-a-time implementation of [`histograms_all`]:
/// one `BTreeMap`-backed [`DistanceHistogram`] per node, merged via
/// [`DistanceHistogram::merge_shifted`].
///
/// Kept as the **oracle**: the fused-sweep kernel must be
/// bag-equivalent to this function (asserted by unit tests here and the
/// property tests in `tests/kernel_equivalence.rs`), and the
/// `fused_sweep` benchmark reports speedups relative to it.
pub fn histograms_all_reference(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    object: ObjectId,
    right: RightId,
    mode: PropagationMode,
) -> Result<Vec<DistanceHistogram>, CoreError> {
    sweep(hierarchy.graph(), mode, |v| {
        eacm.label(v, object, right).map(Mode::from)
    })
}

/// Repairs the rows of an existing full-table sweep in place after a
/// hierarchy edit.
///
/// `dirty` must be the complete set of subjects whose histograms the edit
/// may have changed — for a new membership edge `group → member`, the
/// descendant cone of `member` — **closed under descendants and listed in
/// topological order** (use [`crate::invalidation::RepairPlan`]). Every
/// row outside `dirty` is trusted as-is; each dirty row is recomputed
/// from its parents' rows, which are either clean or already repaired by
/// the time the row is visited. Cost is proportional to the cone's size
/// and fan-in, not to the whole hierarchy.
///
/// `table` must have exactly one row per subject of `hierarchy` (the
/// shape [`histograms_all`] produces for the same model).
pub fn histograms_repair(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    object: ObjectId,
    right: RightId,
    mode: PropagationMode,
    table: &mut [DistanceHistogram],
    dirty: &[SubjectId],
) -> Result<(), CoreError> {
    let dag = hierarchy.graph();
    debug_assert_eq!(table.len(), dag.node_count(), "table shape mismatch");
    for &v in dirty {
        let row = combine_row(
            dag,
            v,
            mode,
            |v| eacm.label(v, object, right).map(Mode::from),
            table,
        )?;
        table[v.index()] = row;
    }
    Ok(())
}

/// One topological sweep computing `rights(v)` for every node, with
/// `label(v)` supplying explicit labels.
fn sweep(
    dag: &ucra_graph::Dag,
    mode: PropagationMode,
    label: impl Fn(SubjectId) -> Option<Mode>,
) -> Result<Vec<DistanceHistogram>, CoreError> {
    let mut out: Vec<DistanceHistogram> = vec![DistanceHistogram::new(); dag.node_count()];
    for v in traverse::topo_order(dag) {
        let h = combine_row(dag, v, mode, &label, &out)?;
        out[v.index()] = h;
    }
    Ok(out)
}

/// The counting recurrence for one node: inflow from the parents' rows
/// in `rows`, plus the node's own label (or root default) under `mode`.
fn combine_row(
    dag: &ucra_graph::Dag,
    v: SubjectId,
    mode: PropagationMode,
    label: impl Fn(SubjectId) -> Option<Mode>,
    rows: &[DistanceHistogram],
) -> Result<DistanceHistogram, CoreError> {
    let own = label(v);
    let mut h = DistanceHistogram::new();
    // Inflow from parents, shifted one edge.
    let mut has_inflow = false;
    for &p in dag.parents(v) {
        if !rows[p.index()].is_empty() {
            has_inflow = true;
        }
        h.merge_shifted(&rows[p.index()], 1)?;
    }
    match mode {
        PropagationMode::Both => {
            if let Some(m) = own {
                h.add(0, m, 1)?;
            } else if dag.is_root(v) {
                h.add(0, Mode::Default, 1)?;
            }
        }
        PropagationMode::SecondWins => {
            if let Some(m) = own {
                // The explicit label replaces everything from above.
                h = DistanceHistogram::new();
                h.add(0, m, 1)?;
            } else if dag.is_root(v) {
                h.add(0, Mode::Default, 1)?;
            }
        }
        PropagationMode::FirstWins => {
            if let Some(m) = own {
                // The label joins only if nothing arrives from above.
                if !has_inflow {
                    h.add(0, m, 1)?;
                }
            } else if dag.is_root(v) {
                h.add(0, Mode::Default, 1)?;
            }
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::path_enum::{self, PropagateOptions};
    use crate::mode::Sign;

    fn fig3() -> (SubjectDag, Eacm, [SubjectId; 6], ObjectId, RightId) {
        let mut h = SubjectDag::new();
        let s1 = h.add_subject();
        let s2 = h.add_subject();
        let s3 = h.add_subject();
        let s5 = h.add_subject();
        let s6 = h.add_subject();
        let user = h.add_subject();
        h.add_membership(s1, s3).unwrap();
        h.add_membership(s2, s3).unwrap();
        h.add_membership(s2, user).unwrap();
        h.add_membership(s3, s5).unwrap();
        h.add_membership(s5, user).unwrap();
        h.add_membership(s6, s5).unwrap();
        h.add_membership(s6, user).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(s2, o, r).unwrap();
        eacm.deny(s5, o, r).unwrap();
        (h, eacm, [s1, s2, s3, s5, s6, user], o, r)
    }

    #[test]
    fn matches_table_1_counts() {
        let (h, eacm, [_, _, _, _, _, user], o, r) = fig3();
        let hist = histogram(&h, &eacm, user, o, r, PropagationMode::Both).unwrap();
        assert_eq!(hist.at(1).pos, 1);
        assert_eq!(hist.at(1).neg, 1);
        assert_eq!(hist.at(1).def, 1);
        assert_eq!(hist.at(2).def, 1);
        assert_eq!(hist.at(3).pos, 1);
        assert_eq!(hist.at(3).def, 1);
        let t = hist.totals().unwrap();
        assert_eq!((t.pos, t.neg, t.def), (2, 1, 3));
    }

    #[test]
    fn agrees_with_path_enumeration_on_fig3() {
        let (h, eacm, subjects, o, r) = fig3();
        for s in subjects {
            let recs =
                path_enum::propagate(&h, &eacm, s, o, r, PropagateOptions::default()).unwrap();
            let from_records = DistanceHistogram::from_records(&recs).unwrap();
            let direct = histogram(&h, &eacm, s, o, r, PropagationMode::Both).unwrap();
            assert_eq!(from_records, direct, "mismatch for subject {s}");
        }
    }

    #[test]
    fn histograms_all_matches_per_query() {
        let (h, eacm, subjects, o, r) = fig3();
        let table = histograms_all(&h, &eacm, o, r, PropagationMode::Both).unwrap();
        for s in subjects {
            let direct = histogram(&h, &eacm, s, o, r, PropagationMode::Both).unwrap();
            assert_eq!(table[s.index()], direct, "mismatch for subject {s}");
        }
    }

    #[test]
    fn kernel_backed_histograms_all_matches_the_reference_sweep() {
        let (h, eacm, _, o, r) = fig3();
        for mode in [
            PropagationMode::Both,
            PropagationMode::SecondWins,
            PropagationMode::FirstWins,
        ] {
            assert_eq!(
                histograms_all(&h, &eacm, o, r, mode).unwrap(),
                histograms_all_reference(&h, &eacm, o, r, mode).unwrap(),
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn repair_after_edge_matches_fresh_sweep() {
        // Rebuild fig3 edge by edge; after each insertion repair the
        // member's descendant cone and compare with a full recompute.
        let (full, eacm, _, o, r) = fig3();
        let mut h = SubjectDag::new();
        for _ in 0..full.subject_count() {
            h.add_subject();
        }
        for mode in [
            PropagationMode::Both,
            PropagationMode::SecondWins,
            PropagationMode::FirstWins,
        ] {
            let mut h = h.clone();
            let mut table = histograms_all(&h, &eacm, o, r, mode).unwrap();
            for (g, m) in full.graph().edges() {
                h.add_membership(g, m).unwrap();
                let dirty = crate::invalidation::RepairPlan::for_new_edge(&h, m);
                histograms_repair(&h, &eacm, o, r, mode, &mut table, dirty.dirty()).unwrap();
                let fresh = histograms_all(&h, &eacm, o, r, mode).unwrap();
                assert_eq!(table, fresh, "mode {mode:?}, edge {g}->{m}");
            }
        }
    }

    #[test]
    fn repair_with_empty_dirty_set_is_a_noop() {
        let (h, eacm, _, o, r) = fig3();
        let mut table = histograms_all(&h, &eacm, o, r, PropagationMode::Both).unwrap();
        let before = table.clone();
        histograms_repair(&h, &eacm, o, r, PropagationMode::Both, &mut table, &[]).unwrap();
        assert_eq!(table, before);
    }

    #[test]
    fn handles_exponential_path_counts_without_budget() {
        // 100 stacked diamonds: 2^100 paths — impossible to enumerate,
        // trivial to count.
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..100 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(first, o, r).unwrap();
        let hist = histogram(&h, &eacm, top, o, r, PropagationMode::Both).unwrap();
        assert_eq!(hist.at(200).pos, 1u128 << 100);
    }

    #[test]
    fn counting_overflow_is_an_error() {
        // 128 diamonds overflow u128.
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        let first = top;
        for _ in 0..128 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let mut eacm = Eacm::new();
        eacm.grant(first, ObjectId(0), RightId(0)).unwrap();
        assert_eq!(
            histogram(
                &h,
                &eacm,
                top,
                ObjectId(0),
                RightId(0),
                PropagationMode::Both
            ),
            Err(CoreError::PathCountOverflow)
        );
    }

    #[test]
    fn second_wins_blocks_inherited_records_at_labeled_subjects() {
        // root(+) → mid(-) → leaf. Under Both the leaf sees + at 2 and -
        // at 1; under SecondWins mid forwards only its own -, so the leaf
        // sees just - at 1.
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let mid = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, mid).unwrap();
        h.add_membership(mid, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(root, o, r).unwrap();
        eacm.deny(mid, o, r).unwrap();

        let both = histogram(&h, &eacm, leaf, o, r, PropagationMode::Both).unwrap();
        assert_eq!((both.at(2).pos, both.at(1).neg), (1, 1));

        let second = histogram(&h, &eacm, leaf, o, r, PropagationMode::SecondWins).unwrap();
        assert_eq!(second.at(1).neg, 1);
        assert!(second.at(2).is_zero());
    }

    #[test]
    fn first_wins_suppresses_met_labels() {
        // Same chain: under FirstWins mid's own - never starts because the
        // root's + is already flowing through; the leaf sees only + at 2.
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let mid = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, mid).unwrap();
        h.add_membership(mid, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(root, o, r).unwrap();
        eacm.deny(mid, o, r).unwrap();
        let first = histogram(&h, &eacm, leaf, o, r, PropagationMode::FirstWins).unwrap();
        assert_eq!(first.at(2).pos, 1);
        assert!(first.at(1).is_zero());
    }

    #[test]
    fn first_wins_keeps_labels_on_unreached_subjects() {
        // Two disconnected chains; a label with no inflow still
        // propagates under FirstWins.
        let mut h = SubjectDag::new();
        let a = h.add_subject();
        let b = h.add_subject();
        h.add_membership(a, b).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.set(a, o, r, Sign::Neg).unwrap();
        let hist = histogram(&h, &eacm, b, o, r, PropagationMode::FirstWins).unwrap();
        assert_eq!(hist.at(1).neg, 1);
    }

    #[test]
    fn modes_agree_when_labels_do_not_stack() {
        // Only one labeled node on any path ⇒ all three modes coincide.
        let (h, eacm, [_, _, _, _, _, user], o, r) = fig3();
        // fig3 has S2(+) above S5(-)? S2 → S3 → S5: yes, stacked. Build a
        // variant with the S5 label removed instead.
        let mut eacm2 = Eacm::new();
        for (s, oo, rr, sign) in eacm.iter() {
            if sign == Sign::Pos {
                eacm2.set(s, oo, rr, sign).unwrap();
            }
        }
        let both = histogram(&h, &eacm2, user, o, r, PropagationMode::Both).unwrap();
        let second = histogram(&h, &eacm2, user, o, r, PropagationMode::SecondWins).unwrap();
        // Defaults flow through the labeled S2? No: S2 is a root and
        // labeled, so it contributes no default; S1 and S6 defaults never
        // cross another label. But S1's default passes THROUGH S3 (which
        // is unlabeled) — fine. However S2's + crosses no label either.
        assert_eq!(both, second);
    }
}
