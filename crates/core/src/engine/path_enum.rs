//! The paper-faithful propagation engine: Function `Propagate()` (Fig. 5)
//! as per-path record enumeration.
//!
//! Every authorization (explicit label or root default) is pushed down
//! **every** path of the ancestor sub-graph, one [`AuthRecord`] per path,
//! exactly as the paper's relational loop does. Complexity is `O(n + d)`
//! where `d` is the sum of all path lengths — worst case `O(n·2ⁿ)` (§3.3)
//! — so the engine carries a configurable record budget that turns the
//! blow-up into a clean [`CoreError::PathBudgetExceeded`] instead of an
//! OOM. For path-heavy hierarchies use the [`crate::engine::counting`]
//! engine, which is bag-equivalent but polynomial.

use crate::engine::counting::PropagationMode;
use crate::engine::AuthRecord;
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Mode;

/// Tuning knobs for path enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagateOptions {
    /// Maximum number of records the engine may materialise before
    /// aborting with [`CoreError::PathBudgetExceeded`].
    pub record_budget: usize,
    /// What happens when a travelling record crosses an explicitly
    /// labeled subject (paper future work #3). [`PropagationMode::Both`]
    /// is the paper's Fig. 5 semantics; the other modes are
    /// bag-equivalent to the counting engine's (property-tested).
    pub mode: PropagationMode,
}

impl Default for PropagateOptions {
    fn default() -> Self {
        // Generous enough for every workload in the paper's evaluation;
        // small enough that a pathological diamond chain fails fast.
        PropagateOptions {
            record_budget: 4_000_000,
            mode: PropagationMode::Both,
        }
    }
}

impl PropagateOptions {
    /// Default options with a custom record budget.
    pub fn with_budget(record_budget: usize) -> Self {
        PropagateOptions {
            record_budget,
            ..Default::default()
        }
    }
}

/// Runs Function `Propagate()` for the triple ⟨`subject`, `object`,
/// `right`⟩ and returns the `allRights` bag of the queried subject
/// (paper Table 1) — one record per path from each labeled ancestor or
/// defaulted root.
pub fn propagate(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
    opts: PropagateOptions,
) -> Result<Vec<AuthRecord>, CoreError> {
    let per_subject = propagate_all(hierarchy, eacm, subject, object, right, opts)?;
    Ok(per_subject
        .into_iter()
        .find(|(s, _)| *s == subject)
        .map(|(_, recs)| recs)
        .unwrap_or_default())
}

/// Runs Function `Propagate()` and returns the **full** relation `P`
/// (paper Table 4): for every subject of the ancestor sub-graph, the bag
/// of records that reached it. Entries are keyed by original subject id.
pub fn propagate_all(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
    opts: PropagateOptions,
) -> Result<Vec<(SubjectId, Vec<AuthRecord>)>, CoreError> {
    // Line 1 (Fig. 5): extract the sub-hierarchy with `subject` as sole sink.
    let sub = hierarchy.ancestor_subgraph(subject)?;
    let n = sub.dag.node_count();
    let mut records: Vec<Vec<AuthRecord>> = vec![Vec::new(); n];
    let mut budget = opts.record_budget;

    let spend = |budget: &mut usize| -> Result<(), CoreError> {
        if *budget == 0 {
            return Err(CoreError::PathBudgetExceeded {
                budget: opts.record_budget,
            });
        }
        *budget -= 1;
        Ok(())
    };

    // Under FirstWins, a subject's own label originates only when nothing
    // flows in from above — i.e. when no *proper* ancestor is itself a
    // source (labeled, or an unlabeled root). Precompute that activation.
    let explicit = |v: ucra_graph::NodeId| {
        eacm.label(sub.original_id(v), object, right)
            .map(Mode::from)
    };
    let is_source = |v: ucra_graph::NodeId| explicit(v).is_some() || sub.dag.is_root(v);
    let suppressed: Vec<bool> = if opts.mode == PropagationMode::FirstWins {
        let sources: Vec<ucra_graph::NodeId> = sub.dag.nodes().filter(|&v| is_source(v)).collect();
        let mut below_source = vec![false; n];
        for &s in &sources {
            for &c in sub.dag.children(s) {
                if !below_source[c.index()] {
                    // Mark all descendants of a source.
                    let reach = ucra_graph::traverse::reachable_set(
                        &sub.dag,
                        &[c],
                        ucra_graph::traverse::Direction::Down,
                    );
                    for (i, r) in reach.iter().enumerate() {
                        below_source[i] |= r;
                    }
                }
            }
        }
        below_source
    } else {
        vec![false; n]
    };

    // Lines 3–5: explicit labels at distance 0; defaults on unlabeled roots.
    for v in sub.dag.nodes() {
        let original = sub.original_id(v);
        let mode = match explicit(v) {
            Some(m) => Some(m),
            None if sub.dag.is_root(v) => Some(Mode::Default),
            None => None,
        };
        if let Some(mode) = mode {
            if suppressed[v.index()] {
                continue; // FirstWins: inflow exists, own label never starts
            }
            spend(&mut budget)?;
            records[v.index()].push(AuthRecord {
                dis: 0,
                mode,
                source: original,
            });
        }
    }

    // Lines 6–11: push every record at every non-sink node to each child,
    // one edge (and one +1 distance) at a time. `frontier` holds the
    // records created in the previous round, paired with their node.
    let mut frontier: Vec<(ucra_graph::NodeId, AuthRecord)> = Vec::new();
    for v in sub.dag.nodes() {
        if v != sub.sink {
            for &rec in &records[v.index()] {
                frontier.push((v, rec));
            }
        }
    }
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (v, rec) in frontier {
            for &child in sub.dag.children(v) {
                // SecondWins: an explicitly labeled subject replaces all
                // inflow with its own label — travelling records die at
                // its doorstep.
                if opts.mode == PropagationMode::SecondWins && explicit(child).is_some() {
                    continue;
                }
                spend(&mut budget)?;
                let moved = AuthRecord {
                    dis: rec.dis + 1,
                    ..rec
                };
                records[child.index()].push(moved);
                if child != sub.sink {
                    next.push((child, moved));
                }
            }
        }
        frontier = next;
    }

    Ok(sub
        .dag
        .nodes()
        .map(|v| {
            let mut recs = std::mem::take(&mut records[v.index()]);
            recs.sort();
            (sub.original_id(v), recs)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3 of the paper; returns (hierarchy, eacm, [s1,s2,s3,s5,s6,user]).
    fn fig3() -> (SubjectDag, Eacm, [SubjectId; 6], ObjectId, RightId) {
        let mut h = SubjectDag::new();
        let s1 = h.add_subject();
        let s2 = h.add_subject();
        let s3 = h.add_subject();
        let s5 = h.add_subject();
        let s6 = h.add_subject();
        let user = h.add_subject();
        h.add_membership(s1, s3).unwrap();
        h.add_membership(s2, s3).unwrap();
        h.add_membership(s2, user).unwrap();
        h.add_membership(s3, s5).unwrap();
        h.add_membership(s5, user).unwrap();
        h.add_membership(s6, s5).unwrap();
        h.add_membership(s6, user).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(s2, o, r).unwrap();
        eacm.deny(s5, o, r).unwrap();
        (h, eacm, [s1, s2, s3, s5, s6, user], o, r)
    }

    fn dis_modes(recs: &[AuthRecord]) -> Vec<(u32, Mode)> {
        let mut v: Vec<_> = recs.iter().map(|r| (r.dis, r.mode)).collect();
        v.sort();
        v
    }

    #[test]
    fn reproduces_table_1() {
        let (h, eacm, [_, _, _, _, _, user], o, r) = fig3();
        let recs = propagate(&h, &eacm, user, o, r, PropagateOptions::default()).unwrap();
        assert_eq!(
            dis_modes(&recs),
            vec![
                (1, Mode::Pos),
                (1, Mode::Neg),
                (1, Mode::Default),
                (2, Mode::Default),
                (3, Mode::Pos),
                (3, Mode::Default),
            ]
        );
    }

    #[test]
    fn reproduces_table_4() {
        let (h, eacm, [s1, s2, s3, s5, s6, user], o, r) = fig3();
        let all = propagate_all(&h, &eacm, user, o, r, PropagateOptions::default()).unwrap();
        let total: usize = all.iter().map(|(_, recs)| recs.len()).sum();
        assert_eq!(total, 15, "Table 4 has 15 rows");
        let of = |s: SubjectId| {
            all.iter()
                .find(|(subj, _)| *subj == s)
                .map(|(_, recs)| dis_modes(recs))
                .unwrap()
        };
        assert_eq!(of(s1), vec![(0, Mode::Default)]);
        assert_eq!(of(s2), vec![(0, Mode::Pos)]);
        assert_eq!(of(s3), vec![(1, Mode::Pos), (1, Mode::Default)]);
        assert_eq!(
            of(s5),
            vec![
                (0, Mode::Neg),
                (1, Mode::Default),
                (2, Mode::Pos),
                (2, Mode::Default)
            ]
        );
        assert_eq!(of(s6), vec![(0, Mode::Default)]);
        assert_eq!(of(user).len(), 6);
    }

    #[test]
    fn record_sources_name_the_originating_ancestors() {
        let (h, eacm, [s1, s2, _, s5, s6, user], o, r) = fig3();
        let recs = propagate(&h, &eacm, user, o, r, PropagateOptions::default()).unwrap();
        let sources_of = |mode: Mode| {
            let mut v: Vec<_> = recs
                .iter()
                .filter(|rec| rec.mode == mode)
                .map(|rec| rec.source)
                .collect();
            v.sort();
            v.dedup();
            v
        };
        assert_eq!(sources_of(Mode::Pos), vec![s2]);
        assert_eq!(sources_of(Mode::Neg), vec![s5]);
        assert_eq!(sources_of(Mode::Default), vec![s1, s6]);
    }

    #[test]
    fn sink_with_explicit_label_gets_distance_zero_record() {
        let mut h = SubjectDag::new();
        let g = h.add_subject();
        let m = h.add_subject();
        h.add_membership(g, m).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.deny(m, o, r).unwrap();
        let recs = propagate(&h, &eacm, m, o, r, PropagateOptions::default()).unwrap();
        assert_eq!(dis_modes(&recs), vec![(0, Mode::Neg), (1, Mode::Default)]);
    }

    #[test]
    fn isolated_unlabeled_subject_defaults_at_distance_zero() {
        let mut h = SubjectDag::new();
        let v = h.add_subject();
        let recs = propagate(
            &h,
            &Eacm::new(),
            v,
            ObjectId(0),
            RightId(0),
            PropagateOptions::default(),
        )
        .unwrap();
        assert_eq!(dis_modes(&recs), vec![(0, Mode::Default)]);
    }

    #[test]
    fn labeled_root_receives_no_default() {
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(root, o, r).unwrap();
        let recs = propagate(&h, &eacm, leaf, o, r, PropagateOptions::default()).unwrap();
        assert_eq!(dis_modes(&recs), vec![(1, Mode::Pos)]);
    }

    #[test]
    fn diamond_multiplicity_one_record_per_path() {
        // root → a → leaf, root → b → leaf: the root's label must arrive
        // twice, both times at distance 2.
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let a = h.add_subject();
        let b = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, a).unwrap();
        h.add_membership(root, b).unwrap();
        h.add_membership(a, leaf).unwrap();
        h.add_membership(b, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(root, o, r).unwrap();
        let recs = propagate(&h, &eacm, leaf, o, r, PropagateOptions::default()).unwrap();
        assert_eq!(dis_modes(&recs), vec![(2, Mode::Pos), (2, Mode::Pos)]);
    }

    #[test]
    fn budget_exhaustion_is_an_error() {
        // 24 stacked diamonds: 2^24 paths, far beyond a budget of 1000.
        let mut h = SubjectDag::new();
        let mut top = h.add_subject();
        for _ in 0..24 {
            let l = h.add_subject();
            let r = h.add_subject();
            let bottom = h.add_subject();
            h.add_membership(top, l).unwrap();
            h.add_membership(top, r).unwrap();
            h.add_membership(l, bottom).unwrap();
            h.add_membership(r, bottom).unwrap();
            top = bottom;
        }
        let err = propagate(
            &h,
            &Eacm::new(),
            top,
            ObjectId(0),
            RightId(0),
            PropagateOptions::with_budget(1000),
        )
        .unwrap_err();
        assert_eq!(err, CoreError::PathBudgetExceeded { budget: 1000 });
    }

    #[test]
    fn authorizations_outside_ancestor_subgraph_are_ignored() {
        let (h, mut eacm, [_, _, _, _, _, user], o, r) = fig3();
        // Label an unrelated sibling subject; User's result is unchanged.
        let mut h2 = h.clone();
        let outsider = h2.add_subject();
        eacm.deny(outsider, o, r).unwrap();
        let recs = propagate(&h2, &eacm, user, o, r, PropagateOptions::default()).unwrap();
        assert_eq!(recs.len(), 6);
    }
}
