//! The explicit access control matrix (the paper's EACM).

use crate::error::CoreError;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::mode::Sign;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The sparse explicit access control matrix: at most one explicit sign
/// per ⟨subject, object, right⟩ triple.
///
/// §2 of the paper: "the explicit matrix is typically very sparse in
/// practice", so it is stored as a map keyed by triple rather than as a
/// dense matrix. §3.3 additionally assumes "at most one authorization is
/// explicitly given for every subject-object-right triple; duplicates are
/// meaningless and contradicting authorizations can be assumed to be
/// disallowed" — [`Eacm::set`] enforces exactly that: re-inserting the
/// same sign is an idempotent no-op, inserting the opposite sign is an
/// error.
///
/// A `BTreeMap` keeps iteration deterministic, which matters for
/// reproducible experiments and golden tests; lookup cost is irrelevant
/// next to propagation.
///
/// ```
/// use ucra_core::{Eacm, Sign, SubjectId};
/// use ucra_core::ids::{ObjectId, RightId};
///
/// let (s, o, r) = (SubjectId::from_index(0), ObjectId(0), RightId(0));
/// let mut eacm = Eacm::new();
/// eacm.grant(s, o, r).unwrap();
/// assert_eq!(eacm.label(s, o, r), Some(Sign::Pos));
/// // Contradictions are rejected, per §3.3 of the paper.
/// assert!(eacm.deny(s, o, r).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eacm {
    /// Serialised as a list of `(subject, object, right, sign)` rows:
    /// JSON maps require string keys, and a row list is also the natural
    /// interchange form for an explicit matrix.
    #[serde(with = "entries_as_rows")]
    entries: BTreeMap<(SubjectId, ObjectId, RightId), Sign>,
}

// The offline serde stand-in derives without expanding `with =`
// references, leaving these helpers unused in that configuration.
#[allow(dead_code)]
mod entries_as_rows {
    use super::*;
    use serde::{Deserializer, Serializer};

    type Key = (SubjectId, ObjectId, RightId);

    pub fn serialize<S: Serializer>(map: &BTreeMap<Key, Sign>, ser: S) -> Result<S::Ok, S::Error> {
        let rows: Vec<(SubjectId, ObjectId, RightId, Sign)> =
            map.iter().map(|(&(s, o, r), &g)| (s, o, r, g)).collect();
        serde::Serialize::serialize(&rows, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<BTreeMap<Key, Sign>, D::Error> {
        let rows: Vec<(SubjectId, ObjectId, RightId, Sign)> = serde::Deserialize::deserialize(de)?;
        Ok(rows
            .into_iter()
            .map(|(s, o, r, g)| ((s, o, r), g))
            .collect())
    }
}

impl Eacm {
    /// An empty matrix.
    pub fn new() -> Self {
        Eacm::default()
    }

    /// Records an explicit authorization. Idempotent for the same sign;
    /// an opposite sign for an existing triple is a
    /// [`CoreError::ContradictoryAuthorization`].
    pub fn set(
        &mut self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        sign: Sign,
    ) -> Result<(), CoreError> {
        match self.entries.insert((subject, object, right), sign) {
            None => Ok(()),
            Some(existing) if existing == sign => Ok(()),
            Some(existing) => {
                // Restore the original entry before reporting.
                self.entries.insert((subject, object, right), existing);
                Err(CoreError::ContradictoryAuthorization {
                    subject,
                    object,
                    right,
                    existing,
                    attempted: sign,
                })
            }
        }
    }

    /// Shorthand for [`Eacm::set`] with [`Sign::Pos`].
    pub fn grant(
        &mut self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<(), CoreError> {
        self.set(subject, object, right, Sign::Pos)
    }

    /// Shorthand for [`Eacm::set`] with [`Sign::Neg`].
    pub fn deny(
        &mut self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<(), CoreError> {
        self.set(subject, object, right, Sign::Neg)
    }

    /// Removes an explicit authorization, returning the sign it had.
    pub fn unset(&mut self, subject: SubjectId, object: ObjectId, right: RightId) -> Option<Sign> {
        self.entries.remove(&(subject, object, right))
    }

    /// The explicit sign for a triple, if any.
    pub fn label(&self, subject: SubjectId, object: ObjectId, right: RightId) -> Option<Sign> {
        self.entries.get(&(subject, object, right)).copied()
    }

    /// Number of explicit authorizations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no explicit authorizations are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (SubjectId, ObjectId, RightId, Sign)> + '_ {
        self.entries
            .iter()
            .map(|(&(s, o, r), &sign)| (s, o, r, sign))
    }

    /// The subjects explicitly labeled for one `(object, right)` pair,
    /// with their signs — the slice of the matrix that one `Resolve()`
    /// query reads.
    pub fn labels_for(
        &self,
        object: ObjectId,
        right: RightId,
    ) -> impl Iterator<Item = (SubjectId, Sign)> + '_ {
        self.entries
            .iter()
            .filter(move |((_, o, r), _)| *o == object && *r == right)
            .map(|(&(s, _, _), &sign)| (s, sign))
    }

    /// All distinct `(object, right)` pairs with at least one label.
    pub fn object_right_pairs(&self) -> Vec<(ObjectId, RightId)> {
        let mut pairs: Vec<(ObjectId, RightId)> =
            self.entries.keys().map(|&(_, o, r)| (o, r)).collect();
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (SubjectId, ObjectId, RightId) {
        (SubjectId::from_index(0), ObjectId(0), RightId(0))
    }

    #[test]
    fn grant_deny_and_lookup() {
        let (s, o, r) = ids();
        let s2 = SubjectId::from_index(1);
        let mut m = Eacm::new();
        m.grant(s, o, r).unwrap();
        m.deny(s2, o, r).unwrap();
        assert_eq!(m.label(s, o, r), Some(Sign::Pos));
        assert_eq!(m.label(s2, o, r), Some(Sign::Neg));
        assert_eq!(m.label(s, ObjectId(9), r), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn duplicate_same_sign_is_idempotent() {
        let (s, o, r) = ids();
        let mut m = Eacm::new();
        m.grant(s, o, r).unwrap();
        m.grant(s, o, r).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn contradiction_is_rejected_and_preserves_original() {
        let (s, o, r) = ids();
        let mut m = Eacm::new();
        m.grant(s, o, r).unwrap();
        let err = m.deny(s, o, r).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ContradictoryAuthorization {
                existing: Sign::Pos,
                attempted: Sign::Neg,
                ..
            }
        ));
        assert_eq!(m.label(s, o, r), Some(Sign::Pos));
    }

    #[test]
    fn unset_then_reset_with_other_sign() {
        let (s, o, r) = ids();
        let mut m = Eacm::new();
        m.grant(s, o, r).unwrap();
        assert_eq!(m.unset(s, o, r), Some(Sign::Pos));
        m.deny(s, o, r).unwrap();
        assert_eq!(m.label(s, o, r), Some(Sign::Neg));
    }

    #[test]
    fn labels_for_filters_by_object_and_right() {
        let (s, o, r) = ids();
        let s2 = SubjectId::from_index(1);
        let mut m = Eacm::new();
        m.grant(s, o, r).unwrap();
        m.deny(s2, o, r).unwrap();
        m.grant(s2, ObjectId(1), r).unwrap();
        m.deny(s, o, RightId(1)).unwrap();
        let got: Vec<_> = m.labels_for(o, r).collect();
        assert_eq!(got, vec![(s, Sign::Pos), (s2, Sign::Neg)]);
    }

    #[test]
    fn object_right_pairs_are_deduped_and_sorted() {
        let (s, o, r) = ids();
        let s2 = SubjectId::from_index(1);
        let mut m = Eacm::new();
        m.grant(s, ObjectId(1), r).unwrap();
        m.grant(s, o, r).unwrap();
        m.deny(s2, o, r).unwrap();
        assert_eq!(m.object_right_pairs(), vec![(o, r), (ObjectId(1), r)]);
    }

    #[test]
    fn serde_round_trip() {
        let (s, o, r) = ids();
        let mut m = Eacm::new();
        m.grant(s, o, r).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Eacm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
