//! Authorization signs and modes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A definite authorization: the value stored in the explicit matrix and
/// the result type of `Resolve()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Sign {
    /// `+` — access granted.
    Pos,
    /// `-` — access denied.
    Neg,
}

impl Sign {
    /// The paper's one-character rendering.
    pub fn symbol(self) -> char {
        match self {
            Sign::Pos => '+',
            Sign::Neg => '-',
        }
    }

    /// The opposite sign.
    #[must_use]
    pub fn flipped(self) -> Sign {
        match self {
            Sign::Pos => Sign::Neg,
            Sign::Neg => Sign::Pos,
        }
    }

    /// Parses `+` / `-`.
    pub fn from_symbol(c: char) -> Option<Sign> {
        match c {
            '+' => Some(Sign::Pos),
            '-' => Some(Sign::Neg),
            _ => None,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// The mode column of the `allRights` relation: a definite sign or the
/// placeholder `d` that Step 2 assigns to unlabeled root ancestors before
/// the Default policy turns it into a sign (or discards it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mode {
    /// `+`.
    Pos,
    /// `-`.
    Neg,
    /// `d` — a pending default.
    Default,
}

impl Mode {
    /// The paper's one-character rendering (`+`, `-`, or `d`).
    pub fn symbol(self) -> char {
        match self {
            Mode::Pos => '+',
            Mode::Neg => '-',
            Mode::Default => 'd',
        }
    }

    /// Parses `+` / `-` / `d`.
    pub fn from_symbol(c: char) -> Option<Mode> {
        match c {
            '+' => Some(Mode::Pos),
            '-' => Some(Mode::Neg),
            'd' => Some(Mode::Default),
            _ => None,
        }
    }

    /// The definite sign, if this mode is not a pending default.
    pub fn sign(self) -> Option<Sign> {
        match self {
            Mode::Pos => Some(Sign::Pos),
            Mode::Neg => Some(Sign::Neg),
            Mode::Default => None,
        }
    }
}

impl From<Sign> for Mode {
    fn from(s: Sign) -> Mode {
        match s {
            Sign::Pos => Mode::Pos,
            Sign::Neg => Mode::Neg,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip() {
        for s in [Sign::Pos, Sign::Neg] {
            assert_eq!(Sign::from_symbol(s.symbol()), Some(s));
        }
        for m in [Mode::Pos, Mode::Neg, Mode::Default] {
            assert_eq!(Mode::from_symbol(m.symbol()), Some(m));
        }
        assert_eq!(Sign::from_symbol('d'), None);
        assert_eq!(Mode::from_symbol('x'), None);
    }

    #[test]
    fn flipped_is_involutive() {
        assert_eq!(Sign::Pos.flipped(), Sign::Neg);
        assert_eq!(Sign::Neg.flipped().flipped(), Sign::Neg);
    }

    #[test]
    fn mode_sign_projection() {
        assert_eq!(Mode::Pos.sign(), Some(Sign::Pos));
        assert_eq!(Mode::Neg.sign(), Some(Sign::Neg));
        assert_eq!(Mode::Default.sign(), None);
        assert_eq!(Mode::from(Sign::Pos), Mode::Pos);
    }

    #[test]
    fn display_matches_paper_symbols() {
        assert_eq!(Sign::Pos.to_string(), "+");
        assert_eq!(Mode::Default.to_string(), "d");
    }
}
