//! The subject hierarchy (the paper's SDAG).

use crate::error::CoreError;
use crate::ids::SubjectId;
use serde::{Deserialize, Serialize};
use ucra_graph::{subgraph, AncestorSubgraph, Dag};

/// A subject hierarchy: a DAG whose edges point from a group to its
/// members (paper Fig. 1).
///
/// Individuals are sinks; groups have outgoing edges to each member, which
/// may itself be a group. The hierarchy is *not* restricted to a tree —
/// a subject may belong to several groups — which is precisely what makes
/// conflict resolution non-trivial (§2.1).
///
/// `SubjectDag` is a thin domain wrapper over [`ucra_graph::Dag`]; the raw
/// graph is reachable through [`SubjectDag::graph`] for structural
/// analyses (path statistics, DOT export, …).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubjectDag {
    dag: Dag,
}

impl SubjectDag {
    /// An empty hierarchy.
    pub fn new() -> Self {
        SubjectDag::default()
    }

    /// An empty hierarchy with room for `n` subjects.
    pub fn with_capacity(n: usize) -> Self {
        SubjectDag {
            dag: Dag::with_capacity(n),
        }
    }

    /// Adds a subject (group or individual — the distinction is purely
    /// structural: subjects without members are individuals).
    pub fn add_subject(&mut self) -> SubjectId {
        self.dag.add_node()
    }

    /// Adds `n` subjects, returning their ids in order.
    pub fn add_subjects(&mut self, n: usize) -> Vec<SubjectId> {
        self.dag.add_nodes(n)
    }

    /// Records that `member` belongs to `group` (an SDAG edge
    /// `group → member`). Rejects cycles, self-membership and duplicates.
    pub fn add_membership(&mut self, group: SubjectId, member: SubjectId) -> Result<(), CoreError> {
        self.dag.add_edge(group, member).map_err(CoreError::from)
    }

    /// Number of subjects.
    pub fn subject_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Number of membership edges.
    pub fn membership_count(&self) -> usize {
        self.dag.edge_count()
    }

    /// `true` when `subject` exists.
    pub fn contains(&self, subject: SubjectId) -> bool {
        self.dag.contains(subject)
    }

    /// The groups `subject` directly belongs to.
    pub fn groups_of(&self, subject: SubjectId) -> &[SubjectId] {
        self.dag.parents(subject)
    }

    /// The direct members of `subject`.
    pub fn members_of(&self, subject: SubjectId) -> &[SubjectId] {
        self.dag.children(subject)
    }

    /// Top-level subjects (no containing group).
    pub fn roots(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.dag.roots()
    }

    /// Individuals (no members).
    pub fn individuals(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.dag.sinks()
    }

    /// All subjects in id order.
    pub fn subjects(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.dag.nodes()
    }

    /// The maximal sub-hierarchy in which `subject` is the sole sink and
    /// every other node is an ancestor (paper §3 Step 1).
    pub fn ancestor_subgraph(&self, subject: SubjectId) -> Result<AncestorSubgraph, CoreError> {
        if !self.dag.contains(subject) {
            return Err(CoreError::UnknownSubject(subject));
        }
        Ok(subgraph::ancestor_subgraph(&self.dag, subject))
    }

    /// The underlying graph, for structural analyses.
    pub fn graph(&self) -> &Dag {
        &self.dag
    }
}

impl From<Dag> for SubjectDag {
    fn from(dag: Dag) -> Self {
        SubjectDag { dag }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucra_graph::GraphError;

    #[test]
    fn membership_wiring() {
        let mut h = SubjectDag::new();
        let g = h.add_subject();
        let m = h.add_subject();
        h.add_membership(g, m).unwrap();
        assert_eq!(h.members_of(g), &[m]);
        assert_eq!(h.groups_of(m), &[g]);
        assert_eq!(h.subject_count(), 2);
        assert_eq!(h.membership_count(), 1);
        assert_eq!(h.roots().collect::<Vec<_>>(), vec![g]);
        assert_eq!(h.individuals().collect::<Vec<_>>(), vec![m]);
    }

    #[test]
    fn cyclic_membership_is_rejected() {
        let mut h = SubjectDag::new();
        let a = h.add_subject();
        let b = h.add_subject();
        h.add_membership(a, b).unwrap();
        let err = h.add_membership(b, a).unwrap_err();
        assert_eq!(
            err,
            CoreError::Graph(GraphError::WouldCycle {
                parent: b,
                child: a
            })
        );
    }

    #[test]
    fn ancestor_subgraph_of_unknown_subject_errors() {
        let h = SubjectDag::new();
        let ghost = SubjectId::from_index(0);
        assert_eq!(
            h.ancestor_subgraph(ghost).unwrap_err(),
            CoreError::UnknownSubject(ghost)
        );
    }
}
