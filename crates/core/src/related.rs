//! Related-work semantics, expressed over the same propagated data —
//! the paper's §5 comparisons made executable.
//!
//! * **XACML combining algorithms** (Moses 2005, reference \[12\]): the
//!   paper notes XACML resolves conflicts over the *data* hierarchy with
//!   fixed combining algorithms rather than a parametric strategy over
//!   the *subject* hierarchy. Here the four classic algorithms are
//!   implemented over an `allRights` histogram, and their exact
//!   relationships to strategy instances are proven as tests:
//!   deny-overrides with a deny default **is** `P-`; permit-overrides
//!   with a permit default **is** `P+`; first-applicable corresponds to
//!   a locality-ordered scan.
//! * **Bertino et al.** (reference \[1\]): the weak/strong authorization
//!   model, which the paper identifies with the combined strategy
//!   instance D⁻LP⁻.
//!
//! The point the module makes is the paper's own: each hardwired scheme
//! is *one point* in the 48-instance space (or a fixed scan order that
//! the space deliberately generalises).

use crate::engine::DistanceHistogram;
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;
use crate::resolve::Resolver;
use crate::strategy::Strategy;

/// An XACML combining-algorithm decision. Unlike `Resolve()`, XACML
/// algorithms can abstain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XacmlDecision {
    /// `Permit`.
    Permit,
    /// `Deny`.
    Deny,
    /// `NotApplicable` — no rule matched (no explicit record at all).
    NotApplicable,
    /// `Indeterminate` — `only-one-applicable` found conflicting rules.
    Indeterminate,
}

/// The four classic XACML 2.0 rule-combining algorithms, evaluated over
/// the explicit (non-default) records of an `allRights` histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombiningAlgorithm {
    /// Any deny wins.
    DenyOverrides,
    /// Any permit wins.
    PermitOverrides,
    /// The first applicable rule in document order wins; we order
    /// records by distance (nearest first — the natural "document
    /// order" of a hierarchy), deny before permit within a distance.
    FirstApplicable,
    /// Exactly one kind of rule may apply; both kinds ⇒ `Indeterminate`.
    OnlyOneApplicable,
}

/// Evaluates `algorithm` over the explicit records of `hist` (pending
/// defaults are ignored: XACML has no subject-hierarchy default policy —
/// absence of rules is what `NotApplicable` reports).
pub fn combine(hist: &DistanceHistogram, algorithm: CombiningAlgorithm) -> XacmlDecision {
    let Ok(totals) = hist.totals() else {
        // Overflow cannot influence *which* signs are present.
        let mut pos = false;
        let mut neg = false;
        for (_, c) in hist.strata() {
            pos |= c.pos > 0;
            neg |= c.neg > 0;
        }
        return combine_flags(hist, algorithm, pos, neg);
    };
    combine_flags(hist, algorithm, totals.pos > 0, totals.neg > 0)
}

fn combine_flags(
    hist: &DistanceHistogram,
    algorithm: CombiningAlgorithm,
    any_pos: bool,
    any_neg: bool,
) -> XacmlDecision {
    match algorithm {
        CombiningAlgorithm::DenyOverrides => {
            if any_neg {
                XacmlDecision::Deny
            } else if any_pos {
                XacmlDecision::Permit
            } else {
                XacmlDecision::NotApplicable
            }
        }
        CombiningAlgorithm::PermitOverrides => {
            if any_pos {
                XacmlDecision::Permit
            } else if any_neg {
                XacmlDecision::Deny
            } else {
                XacmlDecision::NotApplicable
            }
        }
        CombiningAlgorithm::FirstApplicable => {
            for (_, counts) in hist.strata() {
                if counts.neg > 0 {
                    return XacmlDecision::Deny;
                }
                if counts.pos > 0 {
                    return XacmlDecision::Permit;
                }
                // A stratum with only pending defaults is "no rule".
            }
            XacmlDecision::NotApplicable
        }
        CombiningAlgorithm::OnlyOneApplicable => match (any_pos, any_neg) {
            (true, true) => XacmlDecision::Indeterminate,
            (true, false) => XacmlDecision::Permit,
            (false, true) => XacmlDecision::Deny,
            (false, false) => XacmlDecision::NotApplicable,
        },
    }
}

/// Resolves an XACML decision to a definite sign with a default for the
/// abstaining outcomes, mirroring how a PDP's caller applies a
/// deny-biased or permit-biased default.
pub fn with_default(decision: XacmlDecision, default: Sign) -> Sign {
    match decision {
        XacmlDecision::Permit => Sign::Pos,
        XacmlDecision::Deny => Sign::Neg,
        XacmlDecision::NotApplicable | XacmlDecision::Indeterminate => default,
    }
}

/// Bertino et al.'s weak/strong authorization semantics: the paper (§5)
/// identifies it with the combined strategy instance **D⁻LP⁻** —
/// negative-by-default, most-specific-takes-precedence, denial wins
/// remaining conflicts. Provided as a named entry point; it simply runs
/// `Resolve()` with that instance.
pub fn bertino_weak_strong(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
) -> Result<Sign, CoreError> {
    let strategy: Strategy = "D-LP-".parse().expect("well-formed mnemonic");
    Resolver::new(hierarchy, eacm).resolve(subject, object, right, strategy)
}

/// Equivalence theorem (documented in §5 terms, proven by the tests
/// below and the workspace property suite): `deny-overrides` with a
/// deny-biased default equals the strategy instance `P-`, and
/// `permit-overrides` with a permit-biased default equals `P+`.
pub fn as_strategy(algorithm: CombiningAlgorithm) -> Option<Strategy> {
    match algorithm {
        CombiningAlgorithm::DenyOverrides => Some("P-".parse().expect("mnemonic")),
        CombiningAlgorithm::PermitOverrides => Some("P+".parse().expect("mnemonic")),
        // First-applicable depends on an order, only-one-applicable can
        // abstain with four outcomes: neither is a strategy instance.
        CombiningAlgorithm::FirstApplicable | CombiningAlgorithm::OnlyOneApplicable => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::counting::{self, PropagationMode};
    use crate::mode::Mode;
    use crate::motivating::motivating_example;
    use crate::resolve::resolve_histogram;

    fn table1() -> DistanceHistogram {
        let mut h = DistanceHistogram::new();
        for (d, m) in [
            (1, Mode::Neg),
            (1, Mode::Default),
            (2, Mode::Default),
            (1, Mode::Pos),
            (3, Mode::Pos),
            (3, Mode::Default),
        ] {
            h.add(d, m, 1).unwrap();
        }
        h
    }

    #[test]
    fn xacml_on_the_motivating_example() {
        let h = table1();
        assert_eq!(
            combine(&h, CombiningAlgorithm::DenyOverrides),
            XacmlDecision::Deny
        );
        assert_eq!(
            combine(&h, CombiningAlgorithm::PermitOverrides),
            XacmlDecision::Permit
        );
        // Nearest stratum (distance 1) holds both; deny is scanned first.
        assert_eq!(
            combine(&h, CombiningAlgorithm::FirstApplicable),
            XacmlDecision::Deny
        );
        assert_eq!(
            combine(&h, CombiningAlgorithm::OnlyOneApplicable),
            XacmlDecision::Indeterminate
        );
    }

    #[test]
    fn empty_policy_is_not_applicable() {
        let h = DistanceHistogram::new();
        for alg in [
            CombiningAlgorithm::DenyOverrides,
            CombiningAlgorithm::PermitOverrides,
            CombiningAlgorithm::FirstApplicable,
            CombiningAlgorithm::OnlyOneApplicable,
        ] {
            assert_eq!(combine(&h, alg), XacmlDecision::NotApplicable);
        }
        // Defaults are not rules.
        let mut h = DistanceHistogram::new();
        h.add(2, Mode::Default, 5).unwrap();
        assert_eq!(
            combine(&h, CombiningAlgorithm::DenyOverrides),
            XacmlDecision::NotApplicable
        );
    }

    #[test]
    fn deny_overrides_with_deny_default_is_p_minus() {
        // On every subject of the motivating example (and strategies
        // proptest covers random worlds at the workspace level).
        let ex = motivating_example();
        for s in ex.hierarchy.subjects() {
            let hist = counting::histogram(
                &ex.hierarchy,
                &ex.eacm,
                s,
                ex.obj,
                ex.read,
                PropagationMode::Both,
            )
            .unwrap();
            let xacml = with_default(combine(&hist, CombiningAlgorithm::DenyOverrides), Sign::Neg);
            let p_minus = resolve_histogram(&hist, "P-".parse().unwrap())
                .unwrap()
                .sign;
            assert_eq!(xacml, p_minus, "subject {s}");
            let xacml = with_default(
                combine(&hist, CombiningAlgorithm::PermitOverrides),
                Sign::Pos,
            );
            let p_plus = resolve_histogram(&hist, "P+".parse().unwrap())
                .unwrap()
                .sign;
            assert_eq!(xacml, p_plus, "subject {s}");
        }
    }

    #[test]
    fn first_applicable_matches_deny_biased_lp_on_nearest_stratum() {
        // With records present, first-applicable (deny before permit
        // within a stratum) equals LP- whenever the nearest explicit
        // stratum decides — which is always, since LP- looks at exactly
        // that stratum and breaks its ties toward deny.
        let ex = motivating_example();
        for s in ex.hierarchy.subjects() {
            let hist = counting::histogram(
                &ex.hierarchy,
                &ex.eacm,
                s,
                ex.obj,
                ex.read,
                PropagationMode::Both,
            )
            .unwrap();
            let first = combine(&hist, CombiningAlgorithm::FirstApplicable);
            if first == XacmlDecision::NotApplicable {
                continue;
            }
            let lp_minus = resolve_histogram(&hist, "LP-".parse().unwrap())
                .unwrap()
                .sign;
            assert_eq!(with_default(first, Sign::Neg), lp_minus, "subject {s}");
        }
    }

    #[test]
    fn bertino_is_d_minus_l_p_minus() {
        let ex = motivating_example();
        let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
        for s in ex.hierarchy.subjects() {
            assert_eq!(
                bertino_weak_strong(&ex.hierarchy, &ex.eacm, s, ex.obj, ex.read).unwrap(),
                resolver
                    .resolve(s, ex.obj, ex.read, "D-LP-".parse().unwrap())
                    .unwrap()
            );
        }
    }

    #[test]
    fn strategy_mappings() {
        assert_eq!(
            as_strategy(CombiningAlgorithm::DenyOverrides)
                .unwrap()
                .mnemonic(),
            "P-"
        );
        assert_eq!(
            as_strategy(CombiningAlgorithm::PermitOverrides)
                .unwrap()
                .mnemonic(),
            "P+"
        );
        assert_eq!(as_strategy(CombiningAlgorithm::FirstApplicable), None);
        assert_eq!(as_strategy(CombiningAlgorithm::OnlyOneApplicable), None);
    }
}
