//! A minimal scoped work-stealing executor for embarrassingly parallel
//! index spaces.
//!
//! The engine's parallel drivers ([`crate::EffectiveMatrix::compute_for_pairs_parallel`],
//! [`crate::AccessSession::check_many`]) fan independent sweep batches out
//! over threads. The previous implementation hand-rolled a shared atomic
//! cursor with one `parking_lot::Mutex` **per output cell**; this module
//! replaces it with proper work stealing and lock-free result collection:
//!
//! * every worker owns a deque seeded round-robin with task indexes;
//!   owners pop from the front, thieves steal from the back — the classic
//!   split that keeps contention off the hot path while batches of
//!   uneven cost (sweep time varies with label placement) still balance;
//! * each worker accumulates `(index, result)` pairs privately and the
//!   results are assembled **after** the scope joins — no per-cell locks,
//!   no `Option` dance, no shared mutable output at all.
//!
//! The container environment pins dependencies, so this is a
//! dependency-free stand-in for a `rayon`-style pool, scoped (borrows
//! the closure's environment) and `forbid(unsafe_code)`-clean.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Runs `f(0..tasks)` across up to `threads` workers with work stealing
/// and returns the results in index order.
///
/// `threads <= 1` (or a trivial task count) runs inline on the calling
/// thread — callers can treat this as the serial path and skip thread
/// setup entirely.
///
/// ```
/// let squares = ucra_core::pool::run_indexed(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(tasks);
    if threads <= 1 {
        return (0..tasks).map(f).collect();
    }

    // Seed the deques round-robin so every worker starts with a similar
    // share and neighbouring indexes (often similar cost) spread out.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w..tasks).step_by(threads).collect()))
        .collect();

    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    let harvested: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                let deques = &deques;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own work first: pop the front of our deque.
                        let own = deques[me].lock().pop_front();
                        if let Some(i) = own {
                            local.push((i, f(i)));
                            continue;
                        }
                        // Empty: steal from the back of a victim's deque.
                        let stolen = (0..deques.len())
                            .filter(|&o| o != me)
                            .find_map(|o| deques[o].lock().pop_back());
                        match stolen {
                            Some(i) => local.push((i, f(i))),
                            None => break, // every deque drained
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker must not panic"))
            .collect()
    });
    for (i, value) in harvested.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} executed twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index was executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(37, 4, |i| i * 2);
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 8, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn serial_paths_and_degenerate_inputs() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
        assert_eq!(run_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(run_indexed(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn uneven_task_costs_still_complete() {
        // First worker's seeds are expensive; thieves must drain them.
        let out = run_indexed(16, 4, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn more_threads_than_tasks_is_clamped() {
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }
}
