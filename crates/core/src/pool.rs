//! A persistent parking thread pool for embarrassingly parallel index
//! spaces.
//!
//! The engine's parallel drivers ([`crate::EffectiveMatrix::compute_for_pairs_parallel`],
//! [`crate::AccessSession::check_many`]) fan independent sweep batches out
//! over threads. The previous implementation spawned fresh scoped threads
//! on **every call** and balanced work through one `Mutex<VecDeque>` per
//! worker, locked on every pop and every steal attempt. Measured on the
//! deep-wide stress shape that made the parallel driver *slower* than one
//! thread: thread spawn/join latency and per-pop locking swamped the few
//! hundred microseconds a sweep batch actually takes. This module replaces
//! it with the structure long-lived pools (rayon et al.) use:
//!
//! * **Lazily initialised persistent workers.** The first parallel call
//!   spawns the workers it needs (capped at [`MAX_POOL_WORKERS`]); they
//!   park on a condvar between jobs and are reused by every later call —
//!   spawn cost is paid once per process, not once per request.
//! * **Chunked atomic index claiming.** A job is a shared cursor over
//!   `0..tasks`; workers claim chunks with one `fetch_add` instead of a
//!   mutex round-trip per task. Chunks are small enough
//!   (`tasks / (threads × 4)`, minimum 1) that uneven batch costs still
//!   balance.
//! * **The caller participates.** `run_indexed` claims chunks on the
//!   calling thread alongside the helpers, so a starved pool (or a
//!   single-core host) degrades to almost exactly the serial path rather
//!   than blocking on a handoff.
//!
//! # Safety
//!
//! This is the one module in `ucra-core` that uses `unsafe` (the crate is
//! `deny(unsafe_code)` elsewhere): persistent workers outlive any single
//! call, so the caller's borrowed closure is handed to them through a
//! single lifetime-erasing transmute. Soundness rests on one invariant:
//! **the closure is only invoked between a successful chunk claim and the
//! job's completion handshake, and `run_indexed` never returns (or
//! unwinds) before that handshake.**
//!
//! * A worker increments the job's `inflight` counter *before* trying to
//!   claim a chunk and decrements it *after* the chunk's closures have
//!   returned. A successful claim therefore implies `inflight > 0` for
//!   the whole execution window.
//! * `run_indexed` returns only after observing `cursor >= tasks` (no
//!   chunk can be claimed any more) **and** `inflight == 0` (no claimed
//!   chunk is still running). The cursor is monotonic, so after that
//!   observation no worker can reach the closure again: any later claim
//!   attempt sees an exhausted cursor and backs off without touching it.
//! * Panics inside the closure are caught on whichever thread ran the
//!   chunk, recorded on the job, and re-raised on the caller *after* the
//!   completion handshake — the wait is unconditional.
//!
//! The atomics use `SeqCst` so the argument above reads as a plain
//! interleaving argument; the handshake's mutex/condvar pair provides the
//! final synchronises-with edge for the result buffer. CI runs these
//! tests under Miri (`-Zmiri-ignore-leaks` — parked daemon workers are
//! intentionally alive at process exit).

#![allow(unsafe_code)]

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Locks ignoring poisoning: no lock below is ever held across user code
/// (`f` runs outside every critical section), so a poisoned mutex can only
/// mean a panic in the pool's own bookkeeping — the data is still sound.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Hard cap on persistent pool workers, over the whole process lifetime.
/// Requests beyond this are still correct — the caller and the capped
/// helpers drain the cursor — they just don't add oversubscription.
pub const MAX_POOL_WORKERS: usize = 32;

/// The erased shape of one parallel call's task closure.
type Task = dyn Fn(usize) + Sync;

/// One `run_indexed` call, shared between the caller and the helpers.
struct Job {
    /// The caller's closure with its lifetime erased. Only dereferenced
    /// between a successful claim and the completion handshake (see the
    /// module-level safety argument).
    task: &'static Task,
    tasks: usize,
    chunk: usize,
    /// Next unclaimed index; grows monotonically, saturates past `tasks`.
    cursor: AtomicUsize,
    /// Chunk executions currently in flight (claim attempt included).
    inflight: AtomicUsize,
    /// How many pool workers may still join this job. The caller
    /// participates unconditionally, so `threads - 1` at the start.
    helper_slots: AtomicUsize,
    /// Completion handshake: workers notify under the mutex after the
    /// last in-flight chunk finishes; the caller waits on it.
    done: Mutex<()>,
    done_cv: Condvar,
    /// First panic payload raised by the closure, re-raised by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Job {
    fn exhausted(&self) -> bool {
        self.cursor.load(SeqCst) >= self.tasks
    }

    fn complete(&self) -> bool {
        self.exhausted() && self.inflight.load(SeqCst) == 0
    }

    /// Claims and runs chunks until the cursor is exhausted. Called by
    /// the caller thread and by every helper that joined the job.
    fn work(&self) {
        loop {
            self.inflight.fetch_add(1, SeqCst);
            let start = self.cursor.fetch_add(self.chunk, SeqCst);
            if start >= self.tasks {
                self.finish_chunk();
                return;
            }
            let end = (start + self.chunk).min(self.tasks);
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    (self.task)(i);
                }
            }));
            if let Err(payload) = outcome {
                lock(&self.panic).get_or_insert(payload);
                // Stop handing out further chunks; the job is doomed and
                // the caller will re-raise. `fetch_max` keeps the cursor
                // monotonic under concurrent claims.
                self.cursor.fetch_max(self.tasks, SeqCst);
            }
            self.finish_chunk();
        }
    }

    fn finish_chunk(&self) {
        if self.inflight.fetch_sub(1, SeqCst) == 1 && self.exhausted() {
            // Taking the mutex before notifying closes the race against a
            // caller that checked `complete()` just before we decremented.
            let _g = lock(&self.done);
            self.done_cv.notify_all();
        }
    }
}

/// Process-wide pool state: the job board and the parked workers.
struct Pool {
    board: Mutex<Board>,
    work_cv: Condvar,
}

struct Board {
    /// Jobs with unclaimed chunks. A job is registered for the duration
    /// of its `run_indexed` call and removed by the caller.
    jobs: Vec<Arc<Job>>,
    /// Workers spawned so far (monotonic, capped).
    spawned: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        board: Mutex::new(Board {
            jobs: Vec::new(),
            spawned: 0,
        }),
        work_cv: Condvar::new(),
    })
}

/// Number of persistent workers spawned so far (observability: tests
/// assert reuse, the session reports it). Workers are never torn down.
pub fn pooled_workers() -> usize {
    lock(&pool().board).spawned
}

fn ensure_workers(pool: &'static Pool, wanted: usize) {
    let wanted = wanted.min(MAX_POOL_WORKERS);
    let mut board = lock(&pool.board);
    while board.spawned < wanted {
        let id = board.spawned;
        board.spawned += 1;
        std::thread::Builder::new()
            .name(format!("ucra-pool-{id}"))
            .spawn(move || worker_loop(pool))
            .expect("spawning a pool worker thread");
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut board = lock(&pool.board);
            loop {
                // Join the first job that still has unclaimed chunks and
                // a free helper slot; otherwise park until one appears.
                let found = board.jobs.iter().find(|j| {
                    !j.exhausted()
                        && j.helper_slots
                            .fetch_update(SeqCst, SeqCst, |s| s.checked_sub(1))
                            .is_ok()
                });
                match found {
                    Some(job) => break Arc::clone(job),
                    None => {
                        board = pool
                            .work_cv
                            .wait(board)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        job.work();
    }
}

/// Runs `f(0..tasks)` across up to `threads` threads (the caller plus
/// `threads - 1` pooled helpers) and returns the results in index order.
///
/// `threads <= 1` (or a trivial task count) runs inline on the calling
/// thread — callers can treat this as the serial path and skip pool
/// setup entirely. If `f` panics on any thread, the panic is re-raised
/// on the caller once every in-flight task has finished; the pool itself
/// survives and later calls proceed normally.
///
/// ```
/// let squares = ucra_core::pool::run_indexed(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(tasks);
    if threads <= 1 {
        return (0..tasks).map(f).collect();
    }

    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
    let run_one = |i: usize| {
        let value = f(i);
        lock(&results).push((i, value));
    };
    let erased: &(dyn Fn(usize) + Sync) = &run_one;
    // SAFETY: the erased closure borrows `f` and `results` from this
    // stack frame. Workers dereference it only between a successful chunk
    // claim and the completion handshake below, and this function does
    // not return (or unwind) before that handshake observes the job
    // complete — see the module-level safety argument.
    let task: &'static Task = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
    };

    let job = Arc::new(Job {
        task,
        tasks,
        chunk: (tasks / (threads * 4)).max(1),
        cursor: AtomicUsize::new(0),
        inflight: AtomicUsize::new(0),
        helper_slots: AtomicUsize::new(threads - 1),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
        panic: Mutex::new(None),
    });

    let pool = pool();
    ensure_workers(pool, threads - 1);
    lock(&pool.board).jobs.push(Arc::clone(&job));
    pool.work_cv.notify_all();

    // Claim chunks alongside the helpers; on a starved pool the caller
    // simply drains the whole cursor itself.
    job.work();

    // Completion handshake: wait out helpers' in-flight chunks. This wait
    // is unconditional — it is what keeps the lifetime erasure sound.
    {
        let mut g = lock(&job.done);
        while !job.complete() {
            g = job.done_cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
    lock(&pool.board).jobs.retain(|j| !Arc::ptr_eq(j, &job));

    if let Some(payload) = lock(&job.panic).take() {
        panic::resume_unwind(payload);
    }

    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    for (i, value) in results.into_inner().unwrap_or_else(PoisonError::into_inner) {
        debug_assert!(slots[i].is_none(), "task {i} executed twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index was executed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(37, 4, |i| i * 2);
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 8, |i| hits[i].fetch_add(1, SeqCst));
        assert!(hits.iter().all(|h| h.load(SeqCst) == 1));
    }

    #[test]
    fn serial_paths_and_degenerate_inputs() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
        assert_eq!(run_indexed(5, 0, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(run_indexed(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn uneven_task_costs_still_complete_in_order() {
        // Every fourth task is expensive: chunked claiming must keep the
        // cheap tasks flowing around the stragglers, and the reassembly
        // must still come back dense and ordered.
        let out = run_indexed(64, 4, |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks_is_clamped() {
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller_and_pool_survives() {
        let attempt = panic::catch_unwind(|| {
            run_indexed(32, 4, |i| {
                if i == 17 {
                    panic!("boom in task 17");
                }
                i
            })
        });
        let payload = attempt.expect_err("the task panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom in task 17"), "payload: {msg:?}");
        // The pool must stay healthy after a panicked job.
        assert_eq!(run_indexed(8, 4, |i| i + 1), (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reused_across_many_consecutive_calls() {
        let reps = if cfg!(miri) { 10 } else { 200 };
        for rep in 0..reps {
            let out = run_indexed(32, 4, |i| i * rep);
            assert_eq!(out, (0..32).map(|i| i * rep).collect::<Vec<_>>());
        }
        // Workers persist and are reused: the spawn count is bounded by
        // the cap no matter how many calls ran (and other tests in this
        // process share the same pool).
        assert!(pooled_workers() <= MAX_POOL_WORKERS);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    scope.spawn(move || {
                        let out = run_indexed(25, 3, move |i| i + k * 100);
                        assert_eq!(out, (0..25).map(|i| i + k * 100).collect::<Vec<_>>());
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn heavy_interleaving_keeps_every_index_exactly_once() {
        // Tiny chunks + many more tasks than threads: maximal contention
        // on the claim cursor.
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let n = if cfg!(miri) { 50 } else { 500 };
        let out = run_indexed(n, 6, |i| {
            hits[i].fetch_add(1, SeqCst);
            i
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        assert!(hits[..n].iter().all(|h| h.load(SeqCst) == 1));
    }
}
