//! The paper's motivating example (Fig. 1): a nine-subject hierarchy with
//! explicit authorizations on S₂ (+), S₄ (+) and S₅ (−), shared by tests,
//! benchmarks, examples and the table-reproduction binaries.
//!
//! The published figure is an image; the edge set below is reconstructed
//! from the data the paper does print — Table 4 forces the sub-hierarchy
//! of *User* (Fig. 3) uniquely, the prose states S₄ and S₅ are members of
//! S₃ and that S₄ is granted — and the two remaining subjects (S₇, S₈,
//! needed to reach "nine subjects") are placed as members of S₄, outside
//! *User*'s ancestor sub-graph, where every published table and figure is
//! independent of them. See DESIGN.md §2.4.

use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;

/// The motivating example: hierarchy, matrix, and the named subjects.
#[derive(Debug, Clone)]
pub struct MotivatingExample {
    /// The Figure 1 hierarchy.
    pub hierarchy: SubjectDag,
    /// Explicit authorizations: S₂ +, S₄ +, S₅ − on (`obj`, `read`).
    pub eacm: Eacm,
    /// Subjects S₁ … S₈ in order.
    pub s: [SubjectId; 8],
    /// The individual *User*.
    pub user: SubjectId,
    /// The single object `obj`.
    pub obj: ObjectId,
    /// The single right `read`.
    pub read: RightId,
}

impl MotivatingExample {
    /// Human-readable name of a subject in this example.
    pub fn name(&self, subject: SubjectId) -> String {
        if subject == self.user {
            "User".to_string()
        } else if let Some(i) = self.s.iter().position(|&x| x == subject) {
            format!("S{}", i + 1)
        } else {
            format!("{subject}")
        }
    }
}

/// Builds the motivating example.
pub fn motivating_example() -> MotivatingExample {
    let mut hierarchy = SubjectDag::with_capacity(9);
    let s: [SubjectId; 8] = std::array::from_fn(|_| hierarchy.add_subject());
    let user = hierarchy.add_subject();
    let [s1, s2, s3, s4, s5, s6, s7, s8] = s;

    // Figure 3's forced edges (see DESIGN.md §2.4) …
    hierarchy.add_membership(s1, s3).expect("acyclic");
    hierarchy.add_membership(s2, s3).expect("acyclic");
    hierarchy.add_membership(s2, user).expect("acyclic");
    hierarchy.add_membership(s3, s5).expect("acyclic");
    hierarchy.add_membership(s5, user).expect("acyclic");
    hierarchy.add_membership(s6, s5).expect("acyclic");
    hierarchy.add_membership(s6, user).expect("acyclic");
    // … plus the prose edges outside User's ancestor sub-graph.
    hierarchy.add_membership(s3, s4).expect("acyclic");
    hierarchy.add_membership(s4, s7).expect("acyclic");
    hierarchy.add_membership(s4, s8).expect("acyclic");

    let obj = ObjectId(0);
    let read = RightId(0);
    let mut eacm = Eacm::new();
    eacm.grant(s2, obj, read).expect("fresh");
    eacm.grant(s4, obj, read).expect("fresh");
    eacm.deny(s5, obj, read).expect("fresh");

    MotivatingExample {
        hierarchy,
        eacm,
        s,
        user,
        obj,
        read,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nine_subjects_and_three_labels() {
        let ex = motivating_example();
        assert_eq!(ex.hierarchy.subject_count(), 9);
        assert_eq!(ex.eacm.len(), 3);
    }

    #[test]
    fn users_ancestor_subgraph_is_figure_3() {
        let ex = motivating_example();
        let sub = ex.hierarchy.ancestor_subgraph(ex.user).unwrap();
        assert_eq!(sub.dag.node_count(), 6);
        assert_eq!(sub.dag.edge_count(), 7);
        // S4, S7, S8 are outside.
        for outside in [ex.s[3], ex.s[6], ex.s[7]] {
            assert!(sub.sub_id(outside).is_none());
        }
    }

    #[test]
    fn names() {
        let ex = motivating_example();
        assert_eq!(ex.name(ex.user), "User");
        assert_eq!(ex.name(ex.s[0]), "S1");
        assert_eq!(ex.name(ex.s[7]), "S8");
    }

    #[test]
    fn user_is_an_individual() {
        let ex = motivating_example();
        assert!(ex.hierarchy.individuals().any(|v| v == ex.user));
    }
}
