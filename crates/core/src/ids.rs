//! Typed identifiers for subjects, objects and rights.
//!
//! Subjects are nodes of the subject hierarchy, so [`SubjectId`] is a
//! re-export of the graph substrate's node id. Objects and rights are
//! opaque dense ids minted by the caller (usually through `ucra-store`'s
//! interner).

use serde::{Deserialize, Serialize};
use std::fmt;

pub use ucra_graph::NodeId as SubjectId;

/// Identifier of a protected object (a column of the access matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

/// Identifier of a right / operation (read, write, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RightId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for RightId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ObjectId(3).to_string(), "o3");
        assert_eq!(RightId(0).to_string(), "r0");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(RightId(0) < RightId(9));
    }
}
