//! Decision explanations: *why* did `Resolve()` answer `+` or `-`?
//!
//! Access-control denials get appealed; production systems need to say
//! which group's authorization decided and through which policy. This
//! module re-runs a query with the per-path engine (which keeps record
//! *sources*) and attributes the decision to the ancestors whose records
//! participated in the deciding step of Fig. 4.

use crate::engine::path_enum::{self, PropagateOptions};
use crate::engine::{AuthRecord, DistanceHistogram};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Mode;
use crate::resolve::{resolve_histogram, DecisionLine, Resolution};
use crate::strategy::{DefaultRule, LocalityRule, MajorityRule, Strategy};
use std::collections::BTreeMap;
use std::fmt;

/// One ancestor's contribution to a decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contribution {
    /// The ancestor the records came from.
    pub source: SubjectId,
    /// What it contributed (explicit sign, or a pending default).
    pub mode: Mode,
    /// How many paths carried it (= its vote weight under Majority).
    pub paths: u64,
    /// Shortest path distance to the queried subject.
    pub min_dis: u32,
    /// Longest path distance.
    pub max_dis: u32,
    /// Whether records from this source were examined by the step that
    /// produced the decision.
    pub decisive: bool,
}

/// A full explanation of one resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// The query's subject.
    pub subject: SubjectId,
    /// The query's object.
    pub object: ObjectId,
    /// The query's right.
    pub right: RightId,
    /// The strategy that was applied.
    pub strategy: Strategy,
    /// The decision and its Table-3 trace.
    pub resolution: Resolution,
    /// Per-ancestor contributions, nearest first.
    pub contributions: Vec<Contribution>,
}

impl Explanation {
    /// The contributions whose records the deciding step examined.
    pub fn decisive_contributions(&self) -> impl Iterator<Item = &Contribution> {
        self.contributions.iter().filter(|c| c.decisive)
    }

    /// Renders a short human-readable account, with `name` supplying
    /// display names for subjects.
    pub fn narrative(&self, mut name: impl FnMut(SubjectId) -> String) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {} for {}: {} under {}",
            name(self.subject),
            self.object,
            self.right,
            self.resolution.sign,
            self.strategy
        );
        let policy = match self.resolution.line {
            DecisionLine::Majority => format!(
                "decided by the Majority policy ({} positive vs {} negative votes)",
                self.resolution.c1.unwrap_or(0),
                self.resolution.c2.unwrap_or(0)
            ),
            DecisionLine::Locality => match self.strategy.locality_rule() {
                LocalityRule::MostSpecific => {
                    "decided by the Locality policy (most specific authorization)".to_string()
                }
                LocalityRule::MostGeneral => {
                    "decided by the Globality policy (most general authorization)".to_string()
                }
                LocalityRule::Identity => {
                    "decided by the single surviving authorization mode".to_string()
                }
            },
            DecisionLine::Preference => format!(
                "decided by the Preference rule (P{})",
                self.strategy.preference_rule()
            ),
        };
        let _ = writeln!(out, "  {policy}");
        for c in &self.contributions {
            let marker = if c.decisive { "*" } else { " " };
            let dist = if c.min_dis == c.max_dis {
                format!("distance {}", c.min_dis)
            } else {
                format!("distances {}..{}", c.min_dis, c.max_dis)
            };
            let _ = writeln!(
                out,
                "  {marker} {} contributed `{}` along {} path(s), {}",
                name(c.source),
                c.mode,
                c.paths,
                dist
            );
        }
        out.push_str("  (* = examined by the deciding step)\n");
        out
    }
}

/// Explains the resolution of ⟨`subject`, `object`, `right`⟩ under
/// `strategy`.
///
/// ```
/// use ucra_core::explain;
///
/// let ex = ucra_core::motivating::motivating_example();
/// let e = explain(
///     &ex.hierarchy, &ex.eacm, ex.user, ex.obj, ex.read,
///     "D+LMP+".parse().unwrap(),
/// ).unwrap();
/// let text = e.narrative(|s| ex.name(s));
/// assert!(text.contains("Majority"));
/// assert!(text.contains("S2")); // the granting group is named
/// ```
pub fn explain(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
    strategy: Strategy,
) -> Result<Explanation, CoreError> {
    explain_with_mode(
        hierarchy,
        eacm,
        subject,
        object,
        right,
        strategy,
        crate::engine::counting::PropagationMode::Both,
    )
}

/// Like [`explain`], under a non-default propagation mode (paper future
/// work #3). The per-path engine honours all three modes, so the trace
/// always agrees with a counting-engine decision taken under the same
/// mode — use this instead of [`explain`] whenever the deciding resolver
/// was configured with
/// [`Resolver::with_propagation_mode`](crate::Resolver::with_propagation_mode).
#[allow(clippy::too_many_arguments)]
pub fn explain_with_mode(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
    strategy: Strategy,
    mode: crate::engine::counting::PropagationMode,
) -> Result<Explanation, CoreError> {
    let records = path_enum::propagate(
        hierarchy,
        eacm,
        subject,
        object,
        right,
        PropagateOptions {
            mode,
            ..PropagateOptions::default()
        },
    )?;
    let hist = DistanceHistogram::from_records(&records)?;
    let resolution = resolve_histogram(&hist, strategy)?;

    // The distance stratum the deciding step looked at, if it filtered.
    let decisive_stratum = deciding_stratum(&hist, strategy, &resolution);

    let mut per_source: BTreeMap<(SubjectId, Mode), Vec<&AuthRecord>> = BTreeMap::new();
    for r in &records {
        per_source.entry((r.source, r.mode)).or_default().push(r);
    }
    let mut contributions: Vec<Contribution> = per_source
        .into_iter()
        .map(|((source, mode), recs)| {
            let distances: std::collections::BTreeSet<u32> = recs.iter().map(|r| r.dis).collect();
            let min_dis = *distances.first().expect("non-empty");
            let max_dis = *distances.last().expect("non-empty");
            let decisive = is_decisive(mode, &distances, strategy, decisive_stratum);
            Contribution {
                source,
                mode,
                paths: recs.len() as u64,
                min_dis,
                max_dis,
                decisive,
            }
        })
        .collect();
    contributions.sort_by_key(|c| (c.min_dis, c.source));

    Ok(Explanation {
        subject,
        object,
        right,
        strategy,
        resolution,
        contributions,
    })
}

/// Which distance stratum the deciding step filtered on (`None` = it
/// looked at all distances).
fn deciding_stratum(
    hist: &DistanceHistogram,
    strategy: Strategy,
    resolution: &Resolution,
) -> Option<u32> {
    let filtered = match (resolution.line, strategy.majority_rule()) {
        // Majority-before counts everything.
        (DecisionLine::Majority, MajorityRule::Before) => false,
        // Majority-after counts the locality stratum.
        (DecisionLine::Majority, MajorityRule::After) => true,
        (DecisionLine::Majority, MajorityRule::Skip) => unreachable!("skip cannot decide at 6"),
        // Lines 7–9 always go through the locality filter.
        (DecisionLine::Locality | DecisionLine::Preference, _) => true,
    };
    if !filtered {
        return None;
    }
    // Recompute min/max over the post-default histogram, mirroring
    // SignHistogram::locality_counts.
    let survives = |c: crate::engine::ModeCounts| match strategy.default_rule() {
        DefaultRule::NoDefault => c.pos > 0 || c.neg > 0,
        _ => c.pos > 0 || c.neg > 0 || c.def > 0,
    };
    let strata: Vec<u32> = hist
        .strata()
        .filter(|&(_, c)| survives(c))
        .map(|(d, _)| d)
        .collect();
    match strategy.locality_rule() {
        LocalityRule::Identity => None,
        LocalityRule::MostSpecific => strata.first().copied(),
        LocalityRule::MostGeneral => strata.last().copied(),
    }
}

fn is_decisive(
    mode: Mode,
    distances: &std::collections::BTreeSet<u32>,
    strategy: Strategy,
    stratum: Option<u32>,
) -> bool {
    // Discarded defaults never participate.
    if mode == Mode::Default && strategy.default_rule() == DefaultRule::NoDefault {
        return false;
    }
    match stratum {
        None => true,
        Some(d) => distances.contains(&d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating::motivating_example;

    fn explain_user(mnemonic: &str) -> (Explanation, crate::motivating::MotivatingExample) {
        let ex = motivating_example();
        let e = explain(
            &ex.hierarchy,
            &ex.eacm,
            ex.user,
            ex.obj,
            ex.read,
            mnemonic.parse().unwrap(),
        )
        .unwrap();
        (e, ex)
    }

    #[test]
    fn contributions_cover_all_sources_with_path_counts() {
        let (e, ex) = explain_user("D+LMP+");
        // Sources: S1 (d), S2 (+ twice), S5 (-), S6 (d twice).
        assert_eq!(e.contributions.len(), 4);
        let by_source: BTreeMap<SubjectId, &Contribution> =
            e.contributions.iter().map(|c| (c.source, c)).collect();
        assert_eq!(by_source[&ex.s[1]].paths, 2);
        assert_eq!(by_source[&ex.s[1]].mode, Mode::Pos);
        assert_eq!(
            (by_source[&ex.s[1]].min_dis, by_source[&ex.s[1]].max_dis),
            (1, 3)
        );
        assert_eq!(by_source[&ex.s[4]].paths, 1);
        assert_eq!(by_source[&ex.s[5]].paths, 2);
        assert_eq!(by_source[&ex.s[0]].paths, 1);
    }

    #[test]
    fn majority_after_marks_min_stratum_sources() {
        // D+LMP+: majority counted at distance 1 — S2, S5, S6 decisive;
        // S1 (distance 3 only) not.
        let (e, ex) = explain_user("D+LMP+");
        let decisive: Vec<SubjectId> = e.decisive_contributions().map(|c| c.source).collect();
        assert!(decisive.contains(&ex.s[1]));
        assert!(decisive.contains(&ex.s[4]));
        assert!(decisive.contains(&ex.s[5]));
        assert!(!decisive.contains(&ex.s[0]));
    }

    #[test]
    fn majority_before_marks_everything() {
        let (e, _) = explain_user("D-MP-");
        assert!(e.contributions.iter().all(|c| c.decisive));
    }

    #[test]
    fn no_default_discards_default_contributions() {
        let (e, ex) = explain_user("MP-");
        let by_source: BTreeMap<SubjectId, &Contribution> =
            e.contributions.iter().map(|c| (c.source, c)).collect();
        assert!(!by_source[&ex.s[0]].decisive, "S1's default is discarded");
        assert!(!by_source[&ex.s[5]].decisive, "S6's default is discarded");
        assert!(by_source[&ex.s[1]].decisive);
        assert!(by_source[&ex.s[4]].decisive);
    }

    #[test]
    fn globality_marks_max_stratum() {
        // D+GP-: decided at distance 3 (S2's long path and S1's default).
        let (e, ex) = explain_user("D+GP-");
        let decisive: Vec<SubjectId> = e.decisive_contributions().map(|c| c.source).collect();
        assert!(decisive.contains(&ex.s[0]));
        assert!(decisive.contains(&ex.s[1]));
        assert!(!decisive.contains(&ex.s[4]), "S5's - sits at distance 1");
    }

    #[test]
    fn narrative_mentions_policy_and_sources() {
        let (e, ex) = explain_user("D-GMP-");
        let text = e.narrative(|s| ex.name(s));
        assert!(text.contains("Preference"), "{text}");
        assert!(text.contains("S2"), "{text}");
        assert!(text.contains("path(s)"), "{text}");
        let (e, ex) = explain_user("D+LMP+");
        let text = e.narrative(|s| ex.name(s));
        assert!(text.contains("Majority"), "{text}");
        assert!(text.contains("2 positive vs 1 negative"), "{text}");
    }

    #[test]
    fn explanation_sign_matches_resolver() {
        let ex = motivating_example();
        let resolver = crate::resolve::Resolver::new(&ex.hierarchy, &ex.eacm);
        for strategy in Strategy::all_instances() {
            let e = explain(&ex.hierarchy, &ex.eacm, ex.user, ex.obj, ex.read, strategy).unwrap();
            assert_eq!(
                e.resolution.sign,
                resolver
                    .resolve(ex.user, ex.obj, ex.read, strategy)
                    .unwrap()
            );
        }
    }

    #[test]
    fn preference_narrative_names_the_sign() {
        let (e, ex) = explain_user("P-");
        let text = e.narrative(|s| ex.name(s));
        assert!(text.contains("P-"), "{text}");
    }
}
