//! Dirty-cone planning for incremental sweep-table repair.
//!
//! The counting recurrence `rights(v) = own(v) ⊎ ⨄_p shift₁(rights(p))`
//! depends only on `v`'s ancestors, so a new membership edge
//! `group → member` can change the `allRights` histogram of `member` and
//! its descendants **only** — every other row of a cached sweep table
//! stays correct. A [`RepairPlan`] captures that dirty descendant cone
//! once per hierarchy edit, in a topological order suitable for a partial
//! re-sweep seeded from the clean ancestor rows
//! ([`crate::engine::counting::histograms_repair`]). One plan serves
//! every cached `(object, right)` table, because the cone is a property
//! of the hierarchy alone.
//!
//! This is the RPPM-style "repair the dependency cone instead of
//! recomputing from scratch" move (Crampton & Sellwood, *Caching and
//! Auditing in the RPPM Model*) applied to the paper's sweep tables.

use crate::hierarchy::SubjectDag;
use crate::ids::SubjectId;
use ucra_graph::traverse::{cone_topo_order, Direction};

/// The set of sweep-table rows a hierarchy edit can have dirtied, in the
/// order a partial re-sweep must recompute them (ancestors within the
/// cone before their descendants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    dirty: Vec<SubjectId>,
}

impl RepairPlan {
    /// The plan for a freshly inserted membership edge `group → member`:
    /// `member` and all of its descendants, topologically ordered.
    ///
    /// Must be computed **after** the edge is in the hierarchy (the cone
    /// is read from the post-edit graph; the pre-edit and post-edit
    /// descendant sets of `member` coincide, since `add_membership` only
    /// adds an incoming edge above it).
    pub fn for_new_edge(hierarchy: &SubjectDag, member: SubjectId) -> Self {
        RepairPlan {
            dirty: cone_topo_order(hierarchy.graph(), &[member], Direction::Down),
        }
    }

    /// The plan for an explicit-label edit (set, overwrite or unset) on
    /// `subject` for one `(object, right)` pair: the subject and all of
    /// its descendants, topologically ordered.
    ///
    /// The recurrence reads `own(v)` only at `v` itself, so a label edit
    /// dirties exactly the edited subject's descendant cone — the same
    /// cone shape as an edge insertion at that subject, and the hierarchy
    /// is unchanged by the edit. Base→default and default→base
    /// transitions need no special casing: the repair re-reads the
    /// post-edit matrix for every dirty row, so a vanished label simply
    /// contributes nothing.
    pub fn for_label_edit(hierarchy: &SubjectDag, subject: SubjectId) -> Self {
        RepairPlan {
            dirty: cone_topo_order(hierarchy.graph(), &[subject], Direction::Down),
        }
    }

    /// The dirty rows in recompute order.
    pub fn dirty(&self) -> &[SubjectId] {
        &self.dirty
    }

    /// Number of dirty rows.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// `true` when nothing needs repair.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_member_and_descendants_only() {
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let group = h.add_subject();
        let member = h.add_subject();
        let leaf = h.add_subject();
        let outsider = h.add_subject();
        h.add_membership(root, group).unwrap();
        h.add_membership(member, leaf).unwrap();
        h.add_membership(group, member).unwrap();
        let plan = RepairPlan::for_new_edge(&h, member);
        assert_eq!(plan.dirty(), &[member, leaf]);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!(!plan.dirty().contains(&outsider));
        assert!(!plan.dirty().contains(&group));
    }

    #[test]
    fn label_edit_plan_is_the_subjects_descendant_cone() {
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let group = h.add_subject();
        let member = h.add_subject();
        let leaf = h.add_subject();
        let outsider = h.add_subject();
        h.add_membership(root, group).unwrap();
        h.add_membership(group, member).unwrap();
        h.add_membership(member, leaf).unwrap();
        let plan = RepairPlan::for_label_edit(&h, group);
        assert_eq!(plan.dirty(), &[group, member, leaf]);
        assert!(!plan.dirty().contains(&root));
        assert!(!plan.dirty().contains(&outsider));
        // A label edit on a sink dirties exactly one row.
        assert_eq!(RepairPlan::for_label_edit(&h, leaf).dirty(), &[leaf]);
    }

    #[test]
    fn plan_for_sink_member_is_one_row() {
        let mut h = SubjectDag::new();
        let g = h.add_subject();
        let m = h.add_subject();
        h.add_membership(g, m).unwrap();
        let plan = RepairPlan::for_new_edge(&h, m);
        assert_eq!(plan.dirty(), &[m]);
    }
}
