//! The `Dominance()` baseline algorithm (Chinaei & Zhang, reference \[2\] of the paper).
//!
//! `Dominance()` evaluates a *single* strategy instance — D⁻LP⁻ ("weak and
//! strong authorizations": default negative, most-specific-takes-
//! precedence, negative preference) — as fast as possible, against which
//! the paper's Fig. 7(a) measures the flexibility overhead of the unified
//! `Resolve()` (reported as ≈27 % on the Livelink workload).
//!
//! The algorithm walks the ancestor hierarchy **upward from the queried
//! subject in level order** (shortest-distance strata). Within the first
//! stratum that contains any authorization it can return `-` the moment a
//! negative is seen — the behaviour the paper describes as "occasionally
//! very fast due to visiting an early negative authorization" and the
//! reason its run time depends on the *placement* of negative
//! authorizations while `Resolve()`'s does not. Unlabeled **roots** count
//! as negative (the D⁻ default); if the walk exhausts all ancestors
//! without meeting any authorization the answer is the preference, `-`.
//!
//! Equivalence with `Resolve(D-LP-)` is asserted by unit tests here and
//! by cross-engine property tests at the workspace level.

use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;

/// Statistics from one `Dominance()` run, used by the benchmark harness
/// to relate cost to negative-authorization placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DominanceStats {
    /// Ancestors visited before the answer was known.
    pub visited: usize,
    /// Whether the early negative exit fired.
    pub early_exit: bool,
}

/// Runs `Dominance()` for ⟨`subject`, `object`, `right`⟩: the effective
/// authorization under the fixed strategy D⁻LP⁻.
///
/// ```
/// use ucra_core::{dominance, Resolver, Sign};
///
/// let ex = ucra_core::motivating::motivating_example();
/// let sign = dominance(&ex.hierarchy, &ex.eacm, ex.user, ex.obj, ex.read).unwrap();
/// assert_eq!(sign, Sign::Neg); // S5's denial is most specific
/// // Always identical to the unified algorithm under D-LP-:
/// let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
/// assert_eq!(
///     sign,
///     resolver.resolve(ex.user, ex.obj, ex.read, "D-LP-".parse().unwrap()).unwrap()
/// );
/// ```
pub fn dominance(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
) -> Result<Sign, CoreError> {
    Ok(dominance_with_stats(hierarchy, eacm, subject, object, right)?.0)
}

/// [`dominance`] with visit statistics.
pub fn dominance_with_stats(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
) -> Result<(Sign, DominanceStats), CoreError> {
    if !hierarchy.contains(subject) {
        return Err(CoreError::UnknownSubject(subject));
    }
    let dag = hierarchy.graph();
    let mut stats = DominanceStats::default();

    // Level-order BFS upward: `current` is the stratum at distance k.
    let mut seen = vec![false; dag.node_count()];
    seen[subject.index()] = true;
    let mut current = vec![subject];
    while !current.is_empty() {
        let mut level_has_positive = false;
        let mut next = Vec::new();
        for &v in &current {
            stats.visited += 1;
            // A node "speaks" if it has an explicit label, or is an
            // unlabeled root (which carries the D⁻ default).
            let spoken = match eacm.label(v, object, right) {
                Some(sign) => Some(sign),
                None if dag.in_degree(v) == 0 => Some(Sign::Neg),
                None => None,
            };
            match spoken {
                Some(Sign::Neg) => {
                    // Most specific stratum reached and a negative is in
                    // it: with P⁻ nothing can override it. Early exit.
                    stats.early_exit = true;
                    return Ok((Sign::Neg, stats));
                }
                Some(Sign::Pos) => level_has_positive = true,
                None => {}
            }
            for &p in dag.parents(v) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    next.push(p);
                }
            }
        }
        if level_has_positive {
            // The nearest stratum with any authorization contained only
            // positives (every negative would have exited above).
            return Ok((Sign::Pos, stats));
        }
        current = next;
    }
    // No authorization anywhere (cannot happen when roots default to
    // negative — every ancestor chain ends at a root — but kept for
    // robustness): closed-world preference.
    Ok((Sign::Neg, stats))
}

/// A **same-substrate** variant of `Dominance()`: the exact propagation
/// machinery of Function `Propagate()` (ancestor sub-graph extraction,
/// per-path record pushing, defaults on unlabeled roots), but specialised
/// to D⁻LP⁻ with its legal early exits — it stops at the first round in
/// which any record reaches the queried subject (the minimum-distance
/// stratum is then complete, and under `min()` deeper strata are
/// irrelevant), and within that round it returns `-` on the first
/// negative or default record seen.
///
/// This is the fair flexibility-overhead comparison of the paper's
/// Fig. 7(a): both contestants pay the same per-record propagation costs,
/// and the specialised one wins exactly by the work its fixed strategy
/// lets it skip. [`dominance`] above is the graph-native version a
/// production Rust system would actually ship; EXPERIMENTS.md reports
/// both.
pub fn dominance_specialized(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
) -> Result<Sign, CoreError> {
    use crate::mode::Mode;
    let sub = hierarchy.ancestor_subgraph(subject)?;
    let dag = &sub.dag;

    // Distance-0 records: explicit labels and root defaults — identical
    // to Propagate() lines 3–5.
    let mut frontier: Vec<(ucra_graph::NodeId, Mode)> = Vec::new();
    let mut sink_modes: Vec<Mode> = Vec::new();
    for v in dag.nodes() {
        let mode = match eacm.label(sub.original_id(v), object, right) {
            Some(sign) => Some(Mode::from(sign)),
            None if dag.is_root(v) => Some(Mode::Default),
            None => None,
        };
        if let Some(mode) = mode {
            if v == sub.sink {
                sink_modes.push(mode);
            } else {
                frontier.push((v, mode));
            }
        }
    }

    loop {
        // The minimum-distance stratum is complete: decide. Under D⁻LP⁻ a
        // default is negative, so any non-positive record decides `-`.
        if !sink_modes.is_empty() {
            let negative = sink_modes.iter().any(|m| *m != Mode::Pos);
            return Ok(if negative { Sign::Neg } else { Sign::Pos });
        }
        if frontier.is_empty() {
            // No authorization anywhere: closed-world preference.
            return Ok(Sign::Neg);
        }
        // One propagation round — the same record-per-path pushing as the
        // unified engine.
        let mut next = Vec::new();
        for (v, mode) in frontier {
            for &child in dag.children(v) {
                if child == sub.sink {
                    if mode != Mode::Pos {
                        // Early exit mid-round on a negative arrival.
                        return Ok(Sign::Neg);
                    }
                    sink_modes.push(mode);
                } else {
                    next.push((child, mode));
                }
            }
        }
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Resolver;
    use crate::strategy::Strategy;

    fn fig3() -> (SubjectDag, Eacm, SubjectId, ObjectId, RightId) {
        let mut h = SubjectDag::new();
        let s1 = h.add_subject();
        let s2 = h.add_subject();
        let s3 = h.add_subject();
        let s5 = h.add_subject();
        let s6 = h.add_subject();
        let user = h.add_subject();
        h.add_membership(s1, s3).unwrap();
        h.add_membership(s2, s3).unwrap();
        h.add_membership(s2, user).unwrap();
        h.add_membership(s3, s5).unwrap();
        h.add_membership(s5, user).unwrap();
        h.add_membership(s6, s5).unwrap();
        h.add_membership(s6, user).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(s2, o, r).unwrap();
        eacm.deny(s5, o, r).unwrap();
        (h, eacm, user, o, r)
    }

    #[test]
    fn motivating_example_is_denied_with_early_exit() {
        let (h, eacm, user, o, r) = fig3();
        let (sign, stats) = dominance_with_stats(&h, &eacm, user, o, r).unwrap();
        assert_eq!(sign, Sign::Neg);
        assert!(stats.early_exit, "S5's negative at distance 1 exits early");
        assert!(stats.visited <= 4);
    }

    #[test]
    fn agrees_with_resolve_d_neg_l_p_neg() {
        let (h, eacm, _, o, r) = fig3();
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let resolver = Resolver::new(&h, &eacm);
        for s in h.subjects() {
            assert_eq!(
                dominance(&h, &eacm, s, o, r).unwrap(),
                resolver.resolve(s, o, r, strategy).unwrap(),
                "disagreement on subject {s}"
            );
        }
    }

    #[test]
    fn nearest_positive_wins_over_farther_negative() {
        // grandparent(-) → parent(+) → leaf: most specific is +.
        let mut h = SubjectDag::new();
        let gp = h.add_subject();
        let p = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(gp, p).unwrap();
        h.add_membership(p, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.deny(gp, o, r).unwrap();
        eacm.grant(p, o, r).unwrap();
        assert_eq!(dominance(&h, &eacm, leaf, o, r).unwrap(), Sign::Pos);
    }

    #[test]
    fn tie_at_same_distance_is_negative() {
        // Two parents at distance 1, one +, one -.
        let mut h = SubjectDag::new();
        let a = h.add_subject();
        let b = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(a, leaf).unwrap();
        h.add_membership(b, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(a, o, r).unwrap();
        eacm.deny(b, o, r).unwrap();
        assert_eq!(dominance(&h, &eacm, leaf, o, r).unwrap(), Sign::Neg);
    }

    #[test]
    fn unlabeled_nearby_root_defaults_negative_and_shadows_farther_grant() {
        // leaf's parent is an unlabeled root (default -, distance 1); a
        // + exists at distance 2 via another chain. D⁻LP⁻ answers -.
        let mut h = SubjectDag::new();
        let root = h.add_subject();
        let gp = h.add_subject();
        let mid = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(root, leaf).unwrap();
        h.add_membership(gp, mid).unwrap();
        h.add_membership(mid, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(gp, o, r).unwrap();
        assert_eq!(dominance(&h, &eacm, leaf, o, r).unwrap(), Sign::Neg);
        // Cross-check against Resolve(D-LP-).
        let resolver = Resolver::new(&h, &eacm);
        assert_eq!(
            resolver
                .resolve(leaf, o, r, "D-LP-".parse().unwrap())
                .unwrap(),
            Sign::Neg
        );
    }

    #[test]
    fn labeled_sink_answers_at_distance_zero() {
        let mut h = SubjectDag::new();
        let g = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(g, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(leaf, o, r).unwrap();
        eacm.deny(g, o, r).unwrap();
        let (sign, stats) = dominance_with_stats(&h, &eacm, leaf, o, r).unwrap();
        assert_eq!(sign, Sign::Pos);
        assert_eq!(stats.visited, 1);
    }

    #[test]
    fn specialized_variant_agrees_with_resolve_and_bfs() {
        let (h, eacm, _, o, r) = fig3();
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let resolver = Resolver::new(&h, &eacm);
        for s in h.subjects() {
            let expected = resolver.resolve(s, o, r, strategy).unwrap();
            assert_eq!(
                dominance_specialized(&h, &eacm, s, o, r).unwrap(),
                expected,
                "specialized disagrees on {s}"
            );
            assert_eq!(
                dominance(&h, &eacm, s, o, r).unwrap(),
                expected,
                "bfs disagrees on {s}"
            );
        }
    }

    #[test]
    fn specialized_variant_on_diamond_multiplicities() {
        // root(+), sibling deny at equal shortest distance: stratum 1 has
        // both signs → negative under P-.
        let mut h = SubjectDag::new();
        let a = h.add_subject();
        let b = h.add_subject();
        let leaf = h.add_subject();
        h.add_membership(a, leaf).unwrap();
        h.add_membership(b, leaf).unwrap();
        let (o, r) = (ObjectId(0), RightId(0));
        let mut eacm = Eacm::new();
        eacm.grant(a, o, r).unwrap();
        eacm.deny(b, o, r).unwrap();
        assert_eq!(
            dominance_specialized(&h, &eacm, leaf, o, r).unwrap(),
            Sign::Neg
        );
    }

    #[test]
    fn unknown_subject_errors() {
        let h = SubjectDag::new();
        let ghost = SubjectId::from_index(3);
        assert_eq!(
            dominance(&h, &Eacm::new(), ghost, ObjectId(0), RightId(0)).unwrap_err(),
            CoreError::UnknownSubject(ghost)
        );
    }
}
