//! Error type for the core algorithms.

use crate::ids::{ObjectId, RightId, SubjectId};
use crate::mode::Sign;
use std::fmt;
use ucra_graph::GraphError;

/// Errors raised by hierarchy construction, matrix maintenance, and the
/// resolution engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying graph operation failed (cycle, unknown node, …).
    Graph(GraphError),
    /// A subject id does not exist in the hierarchy.
    UnknownSubject(SubjectId),
    /// An explicit authorization for this triple already exists with the
    /// opposite sign. Per §3.3, "contradicting authorizations can be
    /// assumed to be disallowed".
    ContradictoryAuthorization {
        /// The triple's subject.
        subject: SubjectId,
        /// The triple's object.
        object: ObjectId,
        /// The triple's right.
        right: RightId,
        /// The sign already recorded.
        existing: Sign,
        /// The sign that was rejected.
        attempted: Sign,
    },
    /// The path-enumeration engine exceeded its record budget. The number
    /// of propagation paths can grow as `O(2ⁿ)` (paper §3.3); the budget
    /// turns a memory blow-up into an error. Use the counting engine for
    /// path-heavy hierarchies.
    PathBudgetExceeded {
        /// The configured budget that was hit.
        budget: usize,
    },
    /// A path count exceeded `u128` in the counting engine.
    PathCountOverflow,
    /// A propagation distance exceeded `u32`. Distances are bounded by
    /// the longest path in the hierarchy, so this can only fire on
    /// adversarial shifted merges — but it must be an error, not a silent
    /// release-mode wrap.
    DistanceOverflow,
    /// A strategy mnemonic could not be parsed.
    BadMnemonic {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A cached sweep table the batched check's sweep phase guarantees
    /// was nevertheless absent at answer time. The only way to get here
    /// is a concurrent repair failure dropping the pair between the two
    /// phases; the pair re-sweeps on the next query, so callers should
    /// retry rather than abort.
    MissingSweepTable {
        /// The pair's object.
        object: ObjectId,
        /// The pair's right.
        right: RightId,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::UnknownSubject(s) => write!(f, "unknown subject {s}"),
            CoreError::ContradictoryAuthorization {
                subject,
                object,
                right,
                existing,
                attempted,
            } => write!(
                f,
                "contradictory explicit authorization on ({subject}, {object}, {right}): \
                 {existing:?} already recorded, {attempted:?} rejected"
            ),
            CoreError::PathBudgetExceeded { budget } => {
                write!(f, "path-enumeration budget of {budget} records exceeded")
            }
            CoreError::PathCountOverflow => write!(f, "path count overflowed u128"),
            CoreError::DistanceOverflow => write!(f, "propagation distance overflowed u32"),
            CoreError::BadMnemonic { input, reason } => {
                write!(f, "bad strategy mnemonic `{input}`: {reason}")
            }
            CoreError::MissingSweepTable { object, right } => write!(
                f,
                "cached sweep table for ({object}, {right}) vanished mid-query; retry"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::PathCountOverflow => CoreError::PathCountOverflow,
            other => CoreError::Graph(other),
        }
    }
}
