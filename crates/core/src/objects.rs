//! Mixed subject **and object** hierarchies — the paper's second
//! future-work item: *"in this work we exploit the subject hierarchy
//! only. It is important to support mixed hierarchy of subjects and
//! objects."*
//!
//! ## Semantics
//!
//! Objects form their own DAG (container → contained: a folder contains
//! documents, a database contains tables). An explicit authorization on
//! ⟨subject ancestor `v`, object ancestor `o'`⟩ applies to the query
//! ⟨`s`, `o`⟩ along every pair of paths (`v ⇝ s` in the subject DAG,
//! `o' ⇝ o` in the object DAG), at combined distance
//! `|subject path| + |object path|` — a record per path pair, so the
//! Majority policy sees the product of the multiplicities and Locality
//! measures combined specificity. Defaults keep their subject-side
//! meaning: an unlabeled subject-root (no explicit entry for *any* object
//! ancestor of `o` under the queried right) contributes one `d` record at
//! its subject distance, attached to the queried object itself.
//!
//! With a trivial object hierarchy (no containers), this degenerates
//! exactly to the paper's subject-only semantics — asserted by tests.

use crate::engine::DistanceHistogram;
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::{Mode, Sign};
use crate::resolve::{resolve_histogram, Resolution};
use crate::strategy::Strategy;
use std::collections::HashMap;
use ucra_graph::{traverse, Dag, NodeId};

/// A hierarchy of objects (container → contained).
///
/// Object ids index nodes directly: the `n`-th object added is
/// `ObjectId(n)`.
#[derive(Debug, Clone, Default)]
pub struct ObjectDag {
    dag: Dag,
}

impl ObjectDag {
    /// An empty object hierarchy.
    pub fn new() -> Self {
        ObjectDag::default()
    }

    /// Adds an object.
    pub fn add_object(&mut self) -> ObjectId {
        let node = self.dag.add_node();
        ObjectId(node.index() as u32)
    }

    /// Records that `inner` is contained in `container`.
    pub fn add_containment(
        &mut self,
        container: ObjectId,
        inner: ObjectId,
    ) -> Result<(), CoreError> {
        self.dag
            .add_edge(Self::node(container), Self::node(inner))
            .map_err(CoreError::from)
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.dag.node_count()
    }

    /// `true` when `object` exists in this hierarchy.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.dag.contains(Self::node(object))
    }

    fn node(o: ObjectId) -> NodeId {
        NodeId::from_index(o.0 as usize)
    }

    /// For every ancestor `o'` of `object` (including itself), the
    /// histogram of path lengths `o' ⇝ object`: length → number of paths.
    fn path_length_histograms(
        &self,
        object: ObjectId,
    ) -> Result<HashMap<ObjectId, Vec<(u32, u128)>>, CoreError> {
        let target = Self::node(object);
        if !self.dag.contains(target) {
            // An object outside the hierarchy is treated as isolated.
            return Ok(HashMap::from([(object, vec![(0, 1)])]));
        }
        let keep = traverse::reachable_set(&self.dag, &[target], traverse::Direction::Up);
        // plen[v]: path-length histogram v ⇝ target, reverse topological.
        let mut plen: Vec<HashMap<u32, u128>> = vec![HashMap::new(); self.dag.node_count()];
        plen[target.index()].insert(0, 1);
        for v in traverse::topo_order(&self.dag).into_iter().rev() {
            if v == target || !keep[v.index()] {
                continue;
            }
            let mut acc: HashMap<u32, u128> = HashMap::new();
            for &c in self.dag.children(v) {
                if !keep[c.index()] {
                    continue;
                }
                for (&len, &cnt) in &plen[c.index()] {
                    let slot = acc.entry(len + 1).or_insert(0);
                    *slot = slot.checked_add(cnt).ok_or(CoreError::PathCountOverflow)?;
                }
            }
            plen[v.index()] = acc;
        }
        let mut out = HashMap::new();
        for v in self.dag.nodes() {
            if keep[v.index()] && !plen[v.index()].is_empty() {
                let mut pairs: Vec<(u32, u128)> =
                    plen[v.index()].iter().map(|(&l, &c)| (l, c)).collect();
                pairs.sort_unstable();
                out.insert(ObjectId(v.index() as u32), pairs);
            }
        }
        Ok(out)
    }
}

/// Resolves ⟨`subject`, `object`, `right`⟩ over a **mixed** subject +
/// object hierarchy under `strategy`, returning the Table-3-style trace.
pub fn resolve_mixed(
    subjects: &SubjectDag,
    objects: &ObjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
    strategy: Strategy,
) -> Result<Resolution, CoreError> {
    let hist = mixed_histogram(subjects, objects, eacm, subject, object, right)?;
    resolve_histogram(&hist, strategy)
}

/// Convenience wrapper returning only the sign.
pub fn resolve_mixed_sign(
    subjects: &SubjectDag,
    objects: &ObjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
    strategy: Strategy,
) -> Result<Sign, CoreError> {
    Ok(resolve_mixed(subjects, objects, eacm, subject, object, right, strategy)?.sign)
}

/// The combined `allRights` histogram of a mixed query.
pub fn mixed_histogram(
    subjects: &SubjectDag,
    objects: &ObjectDag,
    eacm: &Eacm,
    subject: SubjectId,
    object: ObjectId,
    right: RightId,
) -> Result<DistanceHistogram, CoreError> {
    let sub = subjects.ancestor_subgraph(subject)?;
    let object_paths = objects.path_length_histograms(object)?;

    // own(v): explicit labels on (v, any object ancestor, right), each at
    // the object-side distance; or a subject-root default at distance 0.
    let own = |v_sub: NodeId| -> Result<DistanceHistogram, CoreError> {
        let v = sub.original_id(v_sub);
        let mut h = DistanceHistogram::new();
        let mut labeled = false;
        for (&o_prime, lengths) in &object_paths {
            if let Some(sign) = eacm.label(v, o_prime, right) {
                labeled = true;
                for &(len, cnt) in lengths {
                    h.add(len, Mode::from(sign), cnt)?;
                }
            }
        }
        if !labeled && sub.dag.is_root(v_sub) {
            h.add(0, Mode::Default, 1)?;
        }
        Ok(h)
    };

    // Standard downward counting sweep over the ancestor sub-graph.
    let mut out: Vec<DistanceHistogram> = vec![DistanceHistogram::new(); sub.dag.node_count()];
    for v in traverse::topo_order(&sub.dag) {
        let mut h = own(v)?;
        for &p in sub.dag.parents(v) {
            h.merge_shifted(&out[p.index()], 1)?;
        }
        out[v.index()] = h;
    }
    Ok(out[sub.sink.index()].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::counting::{self, PropagationMode};
    use crate::motivating::motivating_example;

    #[test]
    fn trivial_object_hierarchy_degenerates_to_subject_only() {
        let ex = motivating_example();
        let mut objects = ObjectDag::new();
        let obj = objects.add_object();
        assert_eq!(obj, ex.obj);
        for s in ex.hierarchy.subjects() {
            let mixed =
                mixed_histogram(&ex.hierarchy, &objects, &ex.eacm, s, ex.obj, ex.read).unwrap();
            let plain = counting::histogram(
                &ex.hierarchy,
                &ex.eacm,
                s,
                ex.obj,
                ex.read,
                PropagationMode::Both,
            )
            .unwrap();
            assert_eq!(mixed, plain, "subject {s}");
        }
    }

    #[test]
    fn object_outside_hierarchy_is_isolated() {
        let ex = motivating_example();
        let objects = ObjectDag::new(); // ex.obj not even registered
        let mixed =
            mixed_histogram(&ex.hierarchy, &objects, &ex.eacm, ex.user, ex.obj, ex.read).unwrap();
        let plain = counting::histogram(
            &ex.hierarchy,
            &ex.eacm,
            ex.user,
            ex.obj,
            ex.read,
            PropagationMode::Both,
        )
        .unwrap();
        assert_eq!(mixed, plain);
    }

    #[test]
    fn label_on_container_reaches_contained_object_at_combined_distance() {
        // Subjects: group → alice. Objects: folder → doc.
        // grant(group, folder): alice × doc sees + at distance 1 + 1 = 2.
        let mut subjects = SubjectDag::new();
        let group = subjects.add_subject();
        let alice = subjects.add_subject();
        subjects.add_membership(group, alice).unwrap();
        let mut objects = ObjectDag::new();
        let folder = objects.add_object();
        let doc = objects.add_object();
        objects.add_containment(folder, doc).unwrap();
        let read = RightId(0);
        let mut eacm = Eacm::new();
        eacm.grant(group, folder, read).unwrap();

        let hist = mixed_histogram(&subjects, &objects, &eacm, alice, doc, read).unwrap();
        assert_eq!(hist.at(2).pos, 1);
        assert_eq!(hist.totals().unwrap().pos, 1);
        // There is no other record except... group is labeled (for the
        // folder), so no default; alice is not a root.
        assert_eq!(hist.totals().unwrap().def, 0);
    }

    #[test]
    fn object_side_specificity_participates_in_locality() {
        // folder(+ for group) vs doc(- for group): the label on the doc
        // itself is more specific (distance 1 vs 2 from ⟨alice, doc⟩).
        let mut subjects = SubjectDag::new();
        let group = subjects.add_subject();
        let alice = subjects.add_subject();
        subjects.add_membership(group, alice).unwrap();
        let mut objects = ObjectDag::new();
        let folder = objects.add_object();
        let doc = objects.add_object();
        objects.add_containment(folder, doc).unwrap();
        let read = RightId(0);
        let mut eacm = Eacm::new();
        eacm.grant(group, folder, read).unwrap();
        eacm.deny(group, doc, read).unwrap();

        let strategy: Strategy = "LP+".parse().unwrap();
        let sign =
            resolve_mixed_sign(&subjects, &objects, &eacm, alice, doc, read, strategy).unwrap();
        assert_eq!(sign, Sign::Neg, "the doc-level deny is more specific");
        // Globality flips it.
        let strategy: Strategy = "GP-".parse().unwrap();
        let sign =
            resolve_mixed_sign(&subjects, &objects, &eacm, alice, doc, read, strategy).unwrap();
        assert_eq!(sign, Sign::Pos, "the folder-level grant is more general");
    }

    #[test]
    fn object_diamond_multiplies_votes() {
        // Object diamond: root folder contains doc via two intermediate
        // collections ⇒ a grant on the root counts twice for Majority.
        let mut subjects = SubjectDag::new();
        let alice = subjects.add_subject();
        let boss = subjects.add_subject();
        subjects.add_membership(boss, alice).unwrap();
        let mut objects = ObjectDag::new();
        let root = objects.add_object();
        let a = objects.add_object();
        let b = objects.add_object();
        let doc = objects.add_object();
        objects.add_containment(root, a).unwrap();
        objects.add_containment(root, b).unwrap();
        objects.add_containment(a, doc).unwrap();
        objects.add_containment(b, doc).unwrap();
        let read = RightId(0);
        let mut eacm = Eacm::new();
        eacm.grant(boss, root, read).unwrap();
        eacm.deny(boss, doc, read).unwrap();

        let hist = mixed_histogram(&subjects, &objects, &eacm, alice, doc, read).unwrap();
        assert_eq!(hist.at(3).pos, 2, "two object paths from the root folder");
        assert_eq!(hist.at(1).neg, 1);
        // Majority: 2 '+' vs 1 '-' → granted despite the specific deny.
        let sign = resolve_mixed_sign(
            &subjects,
            &objects,
            &eacm,
            alice,
            doc,
            read,
            "MP-".parse().unwrap(),
        )
        .unwrap();
        assert_eq!(sign, Sign::Pos);
        // Locality: the deny at distance 1 is most specific.
        let sign = resolve_mixed_sign(
            &subjects,
            &objects,
            &eacm,
            alice,
            doc,
            read,
            "LP+".parse().unwrap(),
        )
        .unwrap();
        assert_eq!(sign, Sign::Neg);
    }

    #[test]
    fn subject_root_default_still_fires_in_mixed_queries() {
        // An unlabeled, unrelated subject root contributes d at its
        // subject distance even in a mixed query.
        let mut subjects = SubjectDag::new();
        let outsider_root = subjects.add_subject();
        let alice = subjects.add_subject();
        subjects.add_membership(outsider_root, alice).unwrap();
        let mut objects = ObjectDag::new();
        let folder = objects.add_object();
        let doc = objects.add_object();
        objects.add_containment(folder, doc).unwrap();
        let eacm = Eacm::new();
        let hist = mixed_histogram(&subjects, &objects, &eacm, alice, doc, RightId(0)).unwrap();
        assert_eq!(hist.at(1).def, 1);
        assert!(hist.at(0).is_zero());
    }
}
