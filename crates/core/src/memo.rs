//! A memoising resolver — the paper's first future-work item: *"since
//! there are many nodes in the subject hierarchy that are ancestors of
//! several sinks, it would significantly improve the performance of the
//! algorithm if the derived authorizations of such nodes [were] stored in
//! a cache for later uses."*
//!
//! ## Why caching whole `(object, right)` sweeps is sound
//!
//! The counting recurrence `rights(v) = own(v) ⊎ ⨄_p shift₁(rights(p))`
//! depends only on `v`'s ancestors, and the ancestor sub-graph of any
//! query containing `v` contains *all* of `v`'s ancestors. So `rights(v)`
//! is query-independent, and one topological sweep per `(object, right)`
//! pair yields the `allRights` histogram of **every** subject at once
//! ([`crate::engine::counting::histograms_all`]). The cache stores that
//! table; every subsequent query on the same pair — any subject, any of
//! the 48 strategies — is a hash-map lookup plus a constant-size
//! resolution.
//!
//! The histogram keeps `d` (pending default) rows separate, so the cache
//! is also **strategy-independent**: changing the enterprise's conflict
//! resolution strategy (the paper's selling point) invalidates nothing.

use crate::engine::counting::{self, PropagationMode};
use crate::engine::DistanceHistogram;
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;
use crate::resolve::{resolve_histogram, Resolution};
use crate::strategy::Strategy;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key of one memoised decision. The strategy is part of the key, so a
/// memo stays sound across `/check` strategy overrides *and* across
/// strategy-only edits: switching the session strategy changes which
/// keys are queried, never what a key means.
pub type MemoKey = (SubjectId, ObjectId, RightId, Strategy);

/// Lock-striped shards. A power of two so shard selection is a mask.
const MEMO_SHARDS: usize = 32;

/// FNV-1a over the memo key's bytes. Memo keys are a dozen fixed-width
/// bytes with no adversarial structure (ids are dense indices the
/// installation itself assigns), so SipHash — which the std default
/// would charge **twice** per access, once for shard selection and once
/// inside the shard's map — costs more than the lookup it guards. The
/// finish mix folds the high bits down because FNV's low bits alone
/// shard unevenly for sequential ids.
#[derive(Default)]
struct MemoHasher(u64);

impl Hasher for MemoHasher {
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^ (h >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type MemoMap = HashMap<MemoKey, Sign, BuildHasherDefault<MemoHasher>>;

/// Per-shard entry cap: a memo is a bounded cache, not an unbounded
/// index — an adversarial stream of distinct triples stops inserting
/// (and keeps resolving from the sweep tables) instead of growing
/// without limit. 32 × 16384 ≈ 524k decisions.
const MEMO_SHARD_CAP: usize = 16 * 1024;

/// A sharded `(subject, object, right, strategy) → Sign` decision memo
/// (the paper's future-work decision cache, taken literally).
///
/// The memo belongs to **one immutable snapshot** of the model
/// ([`crate::SessionSnapshot`]): because the underlying hierarchy and
/// matrix can never change underneath it, entries never need
/// invalidating — a policy edit publishes a new snapshot with a new
/// (empty or carried-forward) memo, and this one dies with its epoch.
/// That is what makes the soundness argument one sentence long.
///
/// Reads take one shard read-lock; writes one shard write-lock. Shards
/// are selected by key hash, so concurrent readers of different triples
/// touch different lock words.
#[derive(Debug)]
pub struct DecisionMemo {
    shards: Box<[RwLock<MemoMap>]>,
}

impl Default for DecisionMemo {
    fn default() -> Self {
        DecisionMemo::new()
    }
}

impl DecisionMemo {
    /// An empty memo.
    pub fn new() -> Self {
        DecisionMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| RwLock::new(MemoMap::default()))
                .collect(),
        }
    }

    fn shard(&self, key: &MemoKey) -> &RwLock<MemoMap> {
        let mut hasher = MemoHasher::default();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (MEMO_SHARDS - 1)]
    }

    /// The memoised decision for `key`, if present.
    pub fn get(&self, key: &MemoKey) -> Option<Sign> {
        self.shard(key).read().get(key).copied()
    }

    /// Records a decision. A full shard silently declines — the memo is
    /// a cache; the caller already holds the resolved sign.
    pub fn insert(&self, key: MemoKey, sign: Sign) {
        let mut shard = self.shard(&key).write();
        if shard.len() < MEMO_SHARD_CAP || shard.contains_key(&key) {
            shard.insert(key, sign);
        }
    }

    /// Total memoised decisions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// `true` when nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

/// Monotonic read-path counters shared by **every** snapshot a service
/// publishes (an `Arc` handed from snapshot to snapshot), so `/stats`
/// stays cumulative across epochs and no count is lost to an in-flight
/// reader finishing on a retired snapshot.
#[derive(Debug, Default)]
pub struct ReadCounters {
    /// Queries answered through snapshots.
    pub queries: AtomicU64,
    /// Queries answered without sweeping (memo hit or cached table).
    pub cache_hits: AtomicU64,
    /// Cold sweeps computed by snapshot readers.
    pub sweeps: AtomicU64,
    /// Queries answered straight from the decision memo.
    pub memo_hits: AtomicU64,
    /// Queries that resolved from a histogram and (re)filled the memo.
    pub memo_misses: AtomicU64,
}

impl ReadCounters {
    /// A zeroed counter block.
    pub fn new() -> Self {
        ReadCounters::default()
    }

    pub(crate) fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// Finished sweep tables, keyed by `(object, right)` pair.
type SweepCache = RwLock<HashMap<(ObjectId, RightId), Arc<Vec<DistanceHistogram>>>>;

/// A resolver that caches one propagation sweep per `(object, right)`
/// pair. Thread-safe: concurrent readers share cached sweeps.
///
/// ```
/// use ucra_core::{MemoResolver, Strategy};
///
/// let ex = ucra_core::motivating::motivating_example();
/// let memo = MemoResolver::new(&ex.hierarchy, &ex.eacm);
/// // 9 subjects × 48 strategies: one propagation sweep in total.
/// for subject in ex.hierarchy.subjects() {
///     for strategy in Strategy::all_instances() {
///         memo.resolve(subject, ex.obj, ex.read, strategy).unwrap();
///     }
/// }
/// assert_eq!(memo.cached_sweeps(), 1);
/// ```
#[derive(Debug)]
pub struct MemoResolver<'a> {
    hierarchy: &'a SubjectDag,
    eacm: &'a Eacm,
    mode: PropagationMode,
    cache: SweepCache,
}

impl<'a> MemoResolver<'a> {
    /// A memoising resolver over the given model, with the paper's
    /// propagation semantics.
    pub fn new(hierarchy: &'a SubjectDag, eacm: &'a Eacm) -> Self {
        MemoResolver {
            hierarchy,
            eacm,
            mode: PropagationMode::Both,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Selects the propagation mode for all cached sweeps.
    #[must_use]
    pub fn with_propagation_mode(mut self, mode: PropagationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Number of `(object, right)` sweeps currently cached.
    pub fn cached_sweeps(&self) -> usize {
        self.cache.read().len()
    }

    /// Drops all cached sweeps (call after mutating the hierarchy or the
    /// matrix — the resolver holds shared references, so mutation happens
    /// between resolver lifetimes; this exists for long-lived setups that
    /// rebuild the resolver in place).
    pub fn clear(&self) {
        self.cache.write().clear();
    }

    fn sweep(
        &self,
        object: ObjectId,
        right: RightId,
    ) -> Result<Arc<Vec<DistanceHistogram>>, CoreError> {
        if let Some(table) = self.cache.read().get(&(object, right)) {
            return Ok(Arc::clone(table));
        }
        let table = Arc::new(counting::histograms_all(
            self.hierarchy,
            self.eacm,
            object,
            right,
            self.mode,
        )?);
        let mut guard = self.cache.write();
        // A racing writer may have inserted meanwhile; keep the first.
        let entry = guard
            .entry((object, right))
            .or_insert_with(|| Arc::clone(&table));
        Ok(Arc::clone(entry))
    }

    /// The cached `allRights` histogram of one subject.
    pub fn all_rights_histogram(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
    ) -> Result<DistanceHistogram, CoreError> {
        if !self.hierarchy.contains(subject) {
            return Err(CoreError::UnknownSubject(subject));
        }
        Ok(self.sweep(object, right)?[subject.index()].clone())
    }

    /// The effective authorization of a triple under `strategy`.
    pub fn resolve(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Sign, CoreError> {
        Ok(self.resolve_traced(subject, object, right, strategy)?.sign)
    }

    /// Like [`MemoResolver::resolve`], with the Table-3 trace.
    pub fn resolve_traced(
        &self,
        subject: SubjectId,
        object: ObjectId,
        right: RightId,
        strategy: Strategy,
    ) -> Result<Resolution, CoreError> {
        if !self.hierarchy.contains(subject) {
            return Err(CoreError::UnknownSubject(subject));
        }
        let table = self.sweep(object, right)?;
        resolve_histogram(&table[subject.index()], strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating::motivating_example;
    use crate::resolve::Resolver;

    #[test]
    fn matches_uncached_resolver_for_all_strategies_and_subjects() {
        let ex = motivating_example();
        let memo = MemoResolver::new(&ex.hierarchy, &ex.eacm);
        let plain = Resolver::new(&ex.hierarchy, &ex.eacm);
        for subject in ex.hierarchy.subjects() {
            for strategy in Strategy::all_instances() {
                let a = memo
                    .resolve_traced(subject, ex.obj, ex.read, strategy)
                    .unwrap();
                let b = plain
                    .resolve_traced(subject, ex.obj, ex.read, strategy)
                    .unwrap();
                assert_eq!(a, b, "subject {subject}, strategy {strategy}");
            }
        }
    }

    #[test]
    fn one_sweep_serves_every_subject_and_strategy() {
        let ex = motivating_example();
        let memo = MemoResolver::new(&ex.hierarchy, &ex.eacm);
        assert_eq!(memo.cached_sweeps(), 0);
        for subject in ex.hierarchy.subjects() {
            for strategy in Strategy::all_instances().into_iter().take(4) {
                memo.resolve(subject, ex.obj, ex.read, strategy).unwrap();
            }
        }
        assert_eq!(memo.cached_sweeps(), 1);
        memo.clear();
        assert_eq!(memo.cached_sweeps(), 0);
    }

    #[test]
    fn distinct_pairs_get_distinct_sweeps() {
        let ex = motivating_example();
        let memo = MemoResolver::new(&ex.hierarchy, &ex.eacm);
        let strategy: Strategy = "D-LP-".parse().unwrap();
        memo.resolve(ex.user, ex.obj, ex.read, strategy).unwrap();
        memo.resolve(ex.user, ObjectId(7), ex.read, strategy)
            .unwrap();
        memo.resolve(ex.user, ex.obj, RightId(7), strategy).unwrap();
        assert_eq!(memo.cached_sweeps(), 3);
    }

    #[test]
    fn unknown_subject_is_rejected_before_sweeping() {
        let ex = motivating_example();
        let memo = MemoResolver::new(&ex.hierarchy, &ex.eacm);
        let ghost = SubjectId::from_index(99);
        assert_eq!(
            memo.resolve(ghost, ex.obj, ex.read, "P+".parse().unwrap())
                .unwrap_err(),
            CoreError::UnknownSubject(ghost)
        );
        assert_eq!(memo.cached_sweeps(), 0);
    }

    #[test]
    fn concurrent_queries_share_the_cache() {
        let ex = motivating_example();
        let memo = MemoResolver::new(&ex.hierarchy, &ex.eacm);
        let strategy: Strategy = "D+LMP+".parse().unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for subject in ex.hierarchy.subjects() {
                        memo.resolve(subject, ex.obj, ex.read, strategy).unwrap();
                    }
                });
            }
        });
        assert_eq!(memo.cached_sweeps(), 1);
    }
}
