//! The effective access control matrix: §2's "completely filled" matrix
//! of explicit **and** derived authorizations, materialised by running
//! `Resolve()` over every subject for chosen `(object, right)` pairs.
//!
//! The paper (discussing Jajodia et al.) warns that materialising the full
//! effective matrix is expensive and hard to maintain; this module exists
//! for the moderate-size cases where it *is* wanted (reports, audits,
//! constraint checking) and as the substrate for the separation-of-duty
//! checker. One counting sweep per `(object, right)` pair makes the cost
//! `O(pairs × (V + E))` rather than `O(pairs × V × (V + E))`.

use crate::engine::counting::{self, PropagationMode};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;
use crate::resolve::resolve_histogram;
use crate::strategy::Strategy;
use std::collections::BTreeMap;

/// A materialised effective matrix for one strategy: every subject ×
/// every requested `(object, right)` pair.
///
/// ```
/// use ucra_core::{EffectiveMatrix, Sign};
///
/// let ex = ucra_core::motivating::motivating_example();
/// let closed = EffectiveMatrix::compute(
///     &ex.hierarchy, &ex.eacm, "D-LP-".parse().unwrap(),
/// ).unwrap();
/// assert_eq!(closed.sign(ex.user, ex.obj, ex.read), Some(Sign::Neg));
///
/// // What changes if the enterprise opens up? The diff is the report.
/// let open = EffectiveMatrix::compute(
///     &ex.hierarchy, &ex.eacm, "D+LP+".parse().unwrap(),
/// ).unwrap();
/// assert!(!closed.diff(&open).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectiveMatrix {
    strategy: Strategy,
    /// `signs[(o, r)][subject.index()]`.
    signs: BTreeMap<(ObjectId, RightId), Vec<Sign>>,
}

impl EffectiveMatrix {
    /// Computes the effective matrix for the `(object, right)` pairs that
    /// carry at least one explicit authorization (other pairs are uniform:
    /// every root defaults, so every subject resolves identically).
    pub fn compute(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
    ) -> Result<Self, CoreError> {
        Self::compute_for_pairs(hierarchy, eacm, strategy, &eacm.object_right_pairs())
    }

    /// Computes the effective matrix for explicitly chosen pairs.
    pub fn compute_for_pairs(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
        pairs: &[(ObjectId, RightId)],
    ) -> Result<Self, CoreError> {
        let mut signs = BTreeMap::new();
        for &(o, r) in pairs {
            signs.insert((o, r), Self::column(hierarchy, eacm, strategy, o, r)?);
        }
        Ok(EffectiveMatrix { strategy, signs })
    }

    /// Parallel variant of [`EffectiveMatrix::compute_for_pairs`]: pairs
    /// are independent, so each `(object, right)` sweep runs on its own
    /// scoped thread (capped at `threads`).
    pub fn compute_for_pairs_parallel(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
        pairs: &[(ObjectId, RightId)],
        threads: usize,
    ) -> Result<Self, CoreError> {
        let threads = threads.max(1).min(pairs.len().max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let cells: Vec<parking_lot::Mutex<Option<Result<Vec<Sign>, CoreError>>>> =
            (0..pairs.len()).map(|_| parking_lot::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= pairs.len() {
                        break;
                    }
                    let (o, r) = pairs[i];
                    let col = Self::column(hierarchy, eacm, strategy, o, r);
                    *cells[i].lock() = Some(col);
                });
            }
        });
        let mut signs = BTreeMap::new();
        for (i, &(o, r)) in pairs.iter().enumerate() {
            let col = cells[i]
                .lock()
                .take()
                .expect("every index was processed")?;
            signs.insert((o, r), col);
        }
        Ok(EffectiveMatrix { strategy, signs })
    }

    fn column(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
        object: ObjectId,
        right: RightId,
    ) -> Result<Vec<Sign>, CoreError> {
        let table =
            counting::histograms_all(hierarchy, eacm, object, right, PropagationMode::Both)?;
        table
            .iter()
            .map(|hist| Ok(resolve_histogram(hist, strategy)?.sign))
            .collect()
    }

    /// The strategy this matrix was materialised under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The effective sign of a triple, if its pair was materialised.
    pub fn sign(&self, subject: SubjectId, object: ObjectId, right: RightId) -> Option<Sign> {
        self.signs
            .get(&(object, right))
            .and_then(|col| col.get(subject.index()))
            .copied()
    }

    /// The materialised `(object, right)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (ObjectId, RightId)> + '_ {
        self.signs.keys().copied()
    }

    /// All subjects granted `right` on `object`.
    pub fn granted(
        &self,
        object: ObjectId,
        right: RightId,
    ) -> impl Iterator<Item = SubjectId> + '_ {
        self.signs
            .get(&(object, right))
            .into_iter()
            .flat_map(|col| {
                col.iter().enumerate().filter_map(|(i, &s)| {
                    (s == Sign::Pos).then(|| SubjectId::from_index(i))
                })
            })
    }

    /// Number of materialised cells.
    pub fn cell_count(&self) -> usize {
        self.signs.values().map(Vec::len).sum()
    }

    /// The cells where two materialised matrices disagree — the impact
    /// report an administrator wants before switching strategies (the
    /// paper's central operation). Pairs materialised in only one matrix
    /// are skipped.
    pub fn diff(&self, other: &EffectiveMatrix) -> Vec<EffectiveDiff> {
        let mut out = Vec::new();
        for (&(o, r), col) in &self.signs {
            let Some(other_col) = other.signs.get(&(o, r)) else {
                continue;
            };
            for (ix, (&a, &b)) in col.iter().zip(other_col).enumerate() {
                if a != b {
                    out.push(EffectiveDiff {
                        subject: SubjectId::from_index(ix),
                        object: o,
                        right: r,
                        before: a,
                        after: b,
                    });
                }
            }
        }
        out
    }
}

/// One cell that changes when switching between two strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectiveDiff {
    /// The affected subject.
    pub subject: SubjectId,
    /// The affected object.
    pub object: ObjectId,
    /// The affected right.
    pub right: RightId,
    /// The sign under the first (`self`) matrix's strategy.
    pub before: Sign,
    /// The sign under the second (`other`) matrix's strategy.
    pub after: Sign,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating::motivating_example;
    use crate::resolve::Resolver;

    #[test]
    fn matches_per_query_resolution() {
        let ex = motivating_example();
        for strategy in ["D-LP-", "D+GMP+", "MP-"] {
            let strategy: Strategy = strategy.parse().unwrap();
            let matrix = EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, strategy).unwrap();
            let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    matrix.sign(s, ex.obj, ex.read).unwrap(),
                    resolver.resolve(s, ex.obj, ex.read, strategy).unwrap(),
                    "strategy {strategy}, subject {s}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let ex = motivating_example();
        let strategy: Strategy = "D+LMP-".parse().unwrap();
        let pairs: Vec<_> = (0..8).map(|i| (ObjectId(i), ex.read)).collect();
        let seq =
            EffectiveMatrix::compute_for_pairs(&ex.hierarchy, &ex.eacm, strategy, &pairs).unwrap();
        let par = EffectiveMatrix::compute_for_pairs_parallel(
            &ex.hierarchy,
            &ex.eacm,
            strategy,
            &pairs,
            4,
        )
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.cell_count(), 8 * ex.hierarchy.subject_count());
    }

    #[test]
    fn granted_lists_positive_subjects() {
        let ex = motivating_example();
        // Under D+P+ everything with any path resolves +? Not necessarily;
        // use a simple check: granted ∪ denied = all subjects.
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let matrix = EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, strategy).unwrap();
        let granted: Vec<_> = matrix.granted(ex.obj, ex.read).collect();
        for &s in &granted {
            assert_eq!(matrix.sign(s, ex.obj, ex.read), Some(Sign::Pos));
        }
        assert!(granted.len() < ex.hierarchy.subject_count());
    }

    #[test]
    fn diff_reports_exactly_the_changed_cells() {
        let ex = motivating_example();
        let closed =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "D-LP-".parse().unwrap()).unwrap();
        let open =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "D+LP+".parse().unwrap()).unwrap();
        let diff = closed.diff(&open);
        assert!(!diff.is_empty());
        for d in &diff {
            assert_eq!(closed.sign(d.subject, d.object, d.right), Some(d.before));
            assert_eq!(open.sign(d.subject, d.object, d.right), Some(d.after));
            assert_ne!(d.before, d.after);
        }
        // Symmetric cardinality, flipped direction.
        let back = open.diff(&closed);
        assert_eq!(back.len(), diff.len());
        // Self-diff is empty.
        assert!(closed.diff(&closed).is_empty());
    }

    #[test]
    fn diff_skips_unshared_pairs() {
        let ex = motivating_example();
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let a = EffectiveMatrix::compute_for_pairs(
            &ex.hierarchy,
            &ex.eacm,
            strategy,
            &[(ex.obj, ex.read)],
        )
        .unwrap();
        let b = EffectiveMatrix::compute_for_pairs(
            &ex.hierarchy,
            &ex.eacm,
            "D+P+".parse().unwrap(),
            &[(ObjectId(5), ex.read)],
        )
        .unwrap();
        assert!(a.diff(&b).is_empty());
    }

    #[test]
    fn unmaterialised_pairs_return_none() {
        let ex = motivating_example();
        let matrix =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "P+".parse().unwrap()).unwrap();
        assert_eq!(matrix.sign(ex.user, ObjectId(42), ex.read), None);
    }
}
