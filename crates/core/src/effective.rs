//! The effective access control matrix: §2's "completely filled" matrix
//! of explicit **and** derived authorizations, materialised by running
//! `Resolve()` over every subject for chosen `(object, right)` pairs.
//!
//! The paper (discussing Jajodia et al.) warns that materialising the full
//! effective matrix is expensive and hard to maintain; this module exists
//! for the moderate-size cases where it *is* wanted (reports, audits,
//! constraint checking) and as the substrate for the separation-of-duty
//! checker. One counting sweep per `(object, right)` pair makes the cost
//! `O(pairs × (V + E))` rather than `O(pairs × V × (V + E))`.

use crate::engine::counting::PropagationMode;
use crate::engine::kernel::{with_thread_scratch, FusedSweep, SweepContext, DEFAULT_BATCH_COLUMNS};
use crate::error::CoreError;
use crate::hierarchy::SubjectDag;
use crate::ids::{ObjectId, RightId, SubjectId};
use crate::matrix::Eacm;
use crate::mode::Sign;
use crate::pool;
use crate::strategy::Strategy;
use std::collections::{BTreeMap, BTreeSet};

/// Drops repeated `(object, right)` pairs, keeping first-occurrence
/// order. Callers pass arbitrary pair lists (audit configs, CLI input);
/// sweeping a duplicate column would be pure waste since the column only
/// depends on the pair.
fn dedup_pairs(pairs: &[(ObjectId, RightId)]) -> Vec<(ObjectId, RightId)> {
    let mut seen = BTreeSet::new();
    pairs.iter().copied().filter(|p| seen.insert(*p)).collect()
}

/// Minimum matrix size (`subjects × columns` cells) before the parallel
/// driver dispatches to the pool. Below this the whole request sweeps in
/// a few hundred microseconds and batch handoff overhead dominates, so
/// [`EffectiveMatrix::compute_for_pairs_parallel`] runs the serial path
/// instead — same results, no pool traffic.
pub const PARALLEL_WORK_THRESHOLD: usize = 1 << 10;

/// A materialised effective matrix for one strategy: every subject ×
/// every requested `(object, right)` pair.
///
/// ```
/// use ucra_core::{EffectiveMatrix, Sign};
///
/// let ex = ucra_core::motivating::motivating_example();
/// let closed = EffectiveMatrix::compute(
///     &ex.hierarchy, &ex.eacm, "D-LP-".parse().unwrap(),
/// ).unwrap();
/// assert_eq!(closed.sign(ex.user, ex.obj, ex.read), Some(Sign::Neg));
///
/// // What changes if the enterprise opens up? The diff is the report.
/// let open = EffectiveMatrix::compute(
///     &ex.hierarchy, &ex.eacm, "D+LP+".parse().unwrap(),
/// ).unwrap();
/// let report = closed.diff(&open);
/// assert!(!report.changed.is_empty());
/// // The switch also flips every pair that carries no explicit label:
/// assert!(report.default_flip());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectiveMatrix {
    strategy: Strategy,
    /// `signs[(o, r)][subject.index()]`.
    signs: BTreeMap<(ObjectId, RightId), Vec<Sign>>,
}

impl EffectiveMatrix {
    /// Computes the effective matrix for the `(object, right)` pairs that
    /// carry at least one explicit authorization (other pairs are uniform:
    /// every root defaults, so every subject resolves identically).
    pub fn compute(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
    ) -> Result<Self, CoreError> {
        Self::compute_for_pairs(hierarchy, eacm, strategy, &eacm.object_right_pairs())
    }

    /// Computes the effective matrix for explicitly chosen pairs.
    /// Repeated pairs are swept once (the result only depends on the
    /// pair, so the output shape is unchanged).
    pub fn compute_for_pairs(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
        pairs: &[(ObjectId, RightId)],
    ) -> Result<Self, CoreError> {
        let unique = dedup_pairs(pairs);
        Self::compute_batches_serial(&SweepContext::new(hierarchy), eacm, strategy, &unique)
    }

    /// Parallel variant of [`EffectiveMatrix::compute_for_pairs`]:
    /// deduplicated pairs are grouped into **full-width** fused batches
    /// ([`DEFAULT_BATCH_COLUMNS`] columns each — narrowing batches to
    /// match the thread count would trade away the kernel's column
    /// fusion, which is worth more than extra parallel slack) and the
    /// batches are distributed over up to `threads` threads by the
    /// persistent pool ([`crate::pool`]). Every worker sweeps over one
    /// shared immutable [`SweepContext`] and reuses its thread's arena
    /// scratch across batches. `threads` is clamped to the host's
    /// `available_parallelism` (oversubscribing a CPU-bound sweep only
    /// buys context switches), and requests below
    /// [`PARALLEL_WORK_THRESHOLD`] run the serial path unchanged.
    pub fn compute_for_pairs_parallel(
        hierarchy: &SubjectDag,
        eacm: &Eacm,
        strategy: Strategy,
        pairs: &[(ObjectId, RightId)],
        threads: usize,
    ) -> Result<Self, CoreError> {
        let unique = dedup_pairs(pairs);
        Self::compute_batches(
            &SweepContext::new(hierarchy),
            eacm,
            strategy,
            &unique,
            threads,
        )
    }

    /// The shared-context batch driver behind both compute paths.
    /// `unique` must already be deduplicated.
    pub(crate) fn compute_batches(
        ctx: &SweepContext,
        eacm: &Eacm,
        strategy: Strategy,
        unique: &[(ObjectId, RightId)],
        threads: usize,
    ) -> Result<Self, CoreError> {
        // The sweep is CPU-bound, so granting more workers than the host
        // has hardware threads only buys context switches: clamp to
        // `available_parallelism` (a request for 4 workers on a 1-core
        // host runs serial). Serial below the work threshold too, or
        // when the request fits in a single fused batch (nothing to
        // distribute).
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let threads = threads.min(hw);
        // The work estimate is sparsity-aware: a pruned sweep touches
        // only the labels' union descendant cone, so a large-but-sparse
        // matrix estimates `active × columns` cells, not `V × columns`,
        // and microscopic sweeps stop waking the pool.
        if threads.max(1) <= 1 || unique.len() <= DEFAULT_BATCH_COLUMNS {
            return Self::compute_batches_serial(ctx, eacm, strategy, unique);
        }
        let est = ctx.active_set_size(eacm, unique).max(1) * unique.len();
        if est < PARALLEL_WORK_THRESHOLD {
            return Self::compute_batches_serial(ctx, eacm, strategy, unique);
        }
        let batches: Vec<&[(ObjectId, RightId)]> = unique.chunks(DEFAULT_BATCH_COLUMNS).collect();
        let results = pool::run_indexed(batches.len(), threads, |i| {
            let batch = batches[i];
            with_thread_scratch(|scratch| {
                let fused =
                    FusedSweep::compute_with(ctx, eacm, batch, PropagationMode::Both, scratch)?;
                let signs = batch
                    .iter()
                    .enumerate()
                    .map(|(c, &(o, r))| Ok(((o, r), fused.signs(c, strategy)?)))
                    .collect::<Result<Vec<_>, CoreError>>();
                fused.recycle(scratch);
                signs
            })
        });
        let mut signs = BTreeMap::new();
        for batch in results {
            signs.extend(batch?);
        }
        Ok(EffectiveMatrix { strategy, signs })
    }

    /// Serial batch loop: one shared context, one scratch reused across
    /// every batch. Identical batch boundaries to the parallel driver,
    /// so the two paths produce identical sweeps cell for cell.
    fn compute_batches_serial(
        ctx: &SweepContext,
        eacm: &Eacm,
        strategy: Strategy,
        unique: &[(ObjectId, RightId)],
    ) -> Result<Self, CoreError> {
        let mut signs = BTreeMap::new();
        with_thread_scratch(|scratch| {
            for batch in unique.chunks(DEFAULT_BATCH_COLUMNS) {
                let fused =
                    FusedSweep::compute_with(ctx, eacm, batch, PropagationMode::Both, scratch)?;
                for (c, &(o, r)) in batch.iter().enumerate() {
                    signs.insert((o, r), fused.signs(c, strategy)?);
                }
                fused.recycle(scratch);
            }
            Ok::<(), CoreError>(())
        })?;
        Ok(EffectiveMatrix { strategy, signs })
    }

    /// Assembles a matrix from already-resolved columns (each
    /// `signs[(o, r)][subject.index()]`). The impact analyzer maintains
    /// columns incrementally through an edit script and re-wraps them
    /// here so the final state can be [`EffectiveMatrix::diff`]ed
    /// against the base.
    pub(crate) fn from_columns(
        strategy: Strategy,
        signs: BTreeMap<(ObjectId, RightId), Vec<Sign>>,
    ) -> Self {
        EffectiveMatrix { strategy, signs }
    }

    /// The raw columns (crate-internal: the impact analyzer seeds its
    /// evolving overlay columns from a fused base compute).
    pub(crate) fn columns(&self) -> &BTreeMap<(ObjectId, RightId), Vec<Sign>> {
        &self.signs
    }

    /// The strategy this matrix was materialised under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The effective sign of a triple, if its pair was materialised.
    pub fn sign(&self, subject: SubjectId, object: ObjectId, right: RightId) -> Option<Sign> {
        self.signs
            .get(&(object, right))
            .and_then(|col| col.get(subject.index()))
            .copied()
    }

    /// The materialised `(object, right)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (ObjectId, RightId)> + '_ {
        self.signs.keys().copied()
    }

    /// All subjects granted `right` on `object`.
    pub fn granted(
        &self,
        object: ObjectId,
        right: RightId,
    ) -> impl Iterator<Item = SubjectId> + '_ {
        self.signs
            .get(&(object, right))
            .into_iter()
            .flat_map(|col| {
                col.iter()
                    .enumerate()
                    .filter(|&(_, &s)| s == Sign::Pos)
                    .map(|(i, _)| SubjectId::from_index(i))
            })
    }

    /// Number of materialised cells.
    pub fn cell_count(&self) -> usize {
        self.signs.values().map(Vec::len).sum()
    }

    /// The sign every subject resolves to on a pair that carries **no**
    /// explicit authorization anywhere in the hierarchy.
    ///
    /// On such a pair every root contributes only its default record, so
    /// the whole column is uniform: the default rule decides (`D+` → `+`,
    /// `D-` → `-`), and a strategy without a default policy discards the
    /// `d` rows, leaving the tie to the preference rule. This is why
    /// [`EffectiveMatrix::compute`] never materialises those columns — and
    /// why [`EffectiveMatrix::diff`] must still account for them.
    pub fn default_sign(&self) -> Sign {
        self.strategy.default_only_sign()
    }

    /// The impact report an administrator wants before switching
    /// strategies (the paper's central operation).
    ///
    /// Three kinds of impact are reported; none is silently dropped:
    ///
    /// * [`MatrixDiff::changed`] — materialised cells whose sign differs.
    /// * [`MatrixDiff::only_in_self`] / [`MatrixDiff::only_in_other`] —
    ///   pairs materialised on one side only. These **cannot** be compared
    ///   and are listed so "not compared" is never mistaken for
    ///   "unchanged".
    /// * [`MatrixDiff::default_signs`] — the uniform sign of every
    ///   label-free pair under each strategy. A `D-` → `D+` switch flips
    ///   *all* of them for *all* subjects even though no such column is
    ///   materialised; [`MatrixDiff::default_flip`] surfaces exactly that.
    ///   (For matrices built with [`EffectiveMatrix::compute_for_pairs`]
    ///   an unmaterialised pair may still carry explicit labels; the
    ///   default column claim is exact when both sides were built with
    ///   [`EffectiveMatrix::compute`].)
    pub fn diff(&self, other: &EffectiveMatrix) -> MatrixDiff {
        let mut changed = Vec::new();
        let mut only_in_self = Vec::new();
        for (&(o, r), col) in &self.signs {
            let Some(other_col) = other.signs.get(&(o, r)) else {
                only_in_self.push((o, r));
                continue;
            };
            for (ix, (&a, &b)) in col.iter().zip(other_col).enumerate() {
                if a != b {
                    changed.push(EffectiveDiff {
                        subject: SubjectId::from_index(ix),
                        object: o,
                        right: r,
                        before: a,
                        after: b,
                    });
                }
            }
        }
        let only_in_other = other
            .signs
            .keys()
            .filter(|k| !self.signs.contains_key(k))
            .copied()
            .collect();
        MatrixDiff {
            changed,
            only_in_self,
            only_in_other,
            default_signs: (self.default_sign(), other.default_sign()),
        }
    }
}

/// Resolves one `(object, right)` column under many strategies from a
/// **single** propagation sweep.
///
/// `Resolve()` separates propagation (strategy-independent) from
/// resolution (strategy-dependent), so the expensive
/// `O(V + E)` histogram sweep can be shared across all requested
/// strategies — `O(V + E + strategies × V)` instead of
/// `O(strategies × (V + E))`. The static policy analyser leans on this
/// to ask "does removing this label change *any* of the 48 strategies'
/// outcomes?" without 48 sweeps per candidate label.
///
/// Returns one `Vec<Sign>` per requested strategy, indexed like
/// [`EffectiveMatrix::sign`]: `columns[k][subject.index()]` is the
/// effective sign under `strategies[k]`.
pub fn columns_for_strategies(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    object: ObjectId,
    right: RightId,
    strategies: &[Strategy],
) -> Result<Vec<Vec<Sign>>, CoreError> {
    columns_for_strategies_in(
        &SweepContext::new(hierarchy),
        eacm,
        object,
        right,
        strategies,
    )
}

/// [`columns_for_strategies`] over a prebuilt [`SweepContext`].
///
/// Callers that resolve many columns against the **same** hierarchy —
/// the static policy analyser probes every candidate label twice per
/// rule — build the context once and amortise the `O(V + E)` traversal
/// setup across every probe; only the sweep itself is paid per call.
pub fn columns_for_strategies_in(
    ctx: &SweepContext,
    eacm: &Eacm,
    object: ObjectId,
    right: RightId,
    strategies: &[Strategy],
) -> Result<Vec<Vec<Sign>>, CoreError> {
    with_thread_scratch(|scratch| {
        let fused = FusedSweep::compute_with(
            ctx,
            eacm,
            &[(object, right)],
            PropagationMode::Both,
            scratch,
        )?;
        let columns = strategies
            .iter()
            .map(|&strategy| fused.signs(0, strategy))
            .collect();
        fused.recycle(scratch);
        columns
    })
}

/// The full impact report of [`EffectiveMatrix::diff`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixDiff {
    /// Materialised cells whose sign differs between the two matrices.
    pub changed: Vec<EffectiveDiff>,
    /// Pairs materialised in `self` but not in `other` (not comparable).
    pub only_in_self: Vec<(ObjectId, RightId)>,
    /// Pairs materialised in `other` but not in `self` (not comparable).
    pub only_in_other: Vec<(ObjectId, RightId)>,
    /// The uniform sign of every label-free pair under (`self`, `other`).
    pub default_signs: (Sign, Sign),
}

impl MatrixDiff {
    /// `true` when the strategy switch flips the sign of every pair that
    /// carries no explicit authorization — an impact no enumeration of
    /// materialised cells can show.
    pub fn default_flip(&self) -> bool {
        self.default_signs.0 != self.default_signs.1
    }

    /// Pairs that were materialised on one side only and therefore not
    /// compared.
    pub fn skipped(&self) -> impl Iterator<Item = (ObjectId, RightId)> + '_ {
        self.only_in_self.iter().chain(&self.only_in_other).copied()
    }

    /// `true` when the switch provably has no impact: no materialised cell
    /// changed, no pair was left uncompared, and label-free pairs keep
    /// their sign.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
            && self.only_in_self.is_empty()
            && self.only_in_other.is_empty()
            && !self.default_flip()
    }
}

/// One cell that changes when switching between two strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectiveDiff {
    /// The affected subject.
    pub subject: SubjectId,
    /// The affected object.
    pub object: ObjectId,
    /// The affected right.
    pub right: RightId,
    /// The sign under the first (`self`) matrix's strategy.
    pub before: Sign,
    /// The sign under the second (`other`) matrix's strategy.
    pub after: Sign,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motivating::motivating_example;
    use crate::resolve::Resolver;

    #[test]
    fn matches_per_query_resolution() {
        let ex = motivating_example();
        for strategy in ["D-LP-", "D+GMP+", "MP-"] {
            let strategy: Strategy = strategy.parse().unwrap();
            let matrix = EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, strategy).unwrap();
            let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    matrix.sign(s, ex.obj, ex.read).unwrap(),
                    resolver.resolve(s, ex.obj, ex.read, strategy).unwrap(),
                    "strategy {strategy}, subject {s}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let ex = motivating_example();
        let strategy: Strategy = "D+LMP-".parse().unwrap();
        let pairs: Vec<_> = (0..8).map(|i| (ObjectId(i), ex.read)).collect();
        let seq =
            EffectiveMatrix::compute_for_pairs(&ex.hierarchy, &ex.eacm, strategy, &pairs).unwrap();
        let par = EffectiveMatrix::compute_for_pairs_parallel(
            &ex.hierarchy,
            &ex.eacm,
            strategy,
            &pairs,
            4,
        )
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.cell_count(), 8 * ex.hierarchy.subject_count());
    }

    #[test]
    fn repeated_pairs_are_swept_once_with_unchanged_output() {
        let ex = motivating_example();
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let unique = [(ex.obj, ex.read), (ObjectId(3), ex.read)];
        // The same pairs, heavily duplicated and interleaved.
        let dupes: Vec<_> = unique.iter().cycle().take(20).copied().collect();
        let from_unique =
            EffectiveMatrix::compute_for_pairs(&ex.hierarchy, &ex.eacm, strategy, &unique).unwrap();
        let from_dupes =
            EffectiveMatrix::compute_for_pairs(&ex.hierarchy, &ex.eacm, strategy, &dupes).unwrap();
        assert_eq!(from_unique, from_dupes);
        assert_eq!(from_dupes.pairs().count(), unique.len());
        let parallel = EffectiveMatrix::compute_for_pairs_parallel(
            &ex.hierarchy,
            &ex.eacm,
            strategy,
            &dupes,
            3,
        )
        .unwrap();
        assert_eq!(from_unique, parallel);
    }

    #[test]
    fn parallel_with_many_pairs_exercises_multiple_batches() {
        let ex = motivating_example();
        let strategy: Strategy = "D+GMP+".parse().unwrap();
        // More pairs than DEFAULT_BATCH_COLUMNS × threads, so batching,
        // stealing, and result reassembly all kick in.
        let pairs: Vec<_> = (0..40).map(|i| (ObjectId(i), ex.read)).collect();
        let seq =
            EffectiveMatrix::compute_for_pairs(&ex.hierarchy, &ex.eacm, strategy, &pairs).unwrap();
        for threads in [1, 2, 7] {
            let par = EffectiveMatrix::compute_for_pairs_parallel(
                &ex.hierarchy,
                &ex.eacm,
                strategy,
                &pairs,
                threads,
            )
            .unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn granted_lists_positive_subjects() {
        let ex = motivating_example();
        // Under D+P+ everything with any path resolves +? Not necessarily;
        // use a simple check: granted ∪ denied = all subjects.
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let matrix = EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, strategy).unwrap();
        let granted: Vec<_> = matrix.granted(ex.obj, ex.read).collect();
        for &s in &granted {
            assert_eq!(matrix.sign(s, ex.obj, ex.read), Some(Sign::Pos));
        }
        assert!(granted.len() < ex.hierarchy.subject_count());
    }

    #[test]
    fn diff_reports_exactly_the_changed_cells() {
        let ex = motivating_example();
        let closed =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "D-LP-".parse().unwrap()).unwrap();
        let open =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "D+LP+".parse().unwrap()).unwrap();
        let diff = closed.diff(&open);
        assert!(!diff.changed.is_empty());
        for d in &diff.changed {
            assert_eq!(closed.sign(d.subject, d.object, d.right), Some(d.before));
            assert_eq!(open.sign(d.subject, d.object, d.right), Some(d.after));
            assert_ne!(d.before, d.after);
        }
        // Both matrices cover the same pairs, so nothing was skipped.
        assert_eq!(diff.skipped().count(), 0);
        // Symmetric cardinality, flipped direction.
        let back = open.diff(&closed);
        assert_eq!(back.changed.len(), diff.changed.len());
        // Self-diff is empty.
        assert!(closed.diff(&closed).is_empty());
    }

    #[test]
    fn diff_reports_the_default_column_flip() {
        let ex = motivating_example();
        let closed =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "D-LP-".parse().unwrap()).unwrap();
        let open =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "D+LP+".parse().unwrap()).unwrap();
        let diff = closed.diff(&open);
        // The D- → D+ switch flips every label-free pair for every
        // subject; no materialised cell can show it.
        assert!(diff.default_flip());
        assert_eq!(diff.default_signs, (Sign::Neg, Sign::Pos));
        // And the per-query resolver confirms it on a pair with no
        // explicit authorizations at all.
        let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
        let free = ObjectId(99);
        assert_eq!(
            resolver
                .resolve(ex.user, free, ex.read, "D-LP-".parse().unwrap())
                .unwrap(),
            Sign::Neg
        );
        assert_eq!(
            resolver
                .resolve(ex.user, free, ex.read, "D+LP+".parse().unwrap())
                .unwrap(),
            Sign::Pos
        );
        // Same strategy on both sides: no flip, genuinely empty report.
        assert!(!closed.diff(&closed).default_flip());
    }

    #[test]
    fn default_sign_matches_resolution_of_label_free_pairs() {
        let ex = motivating_example();
        let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
        let free = ObjectId(77);
        for strategy in Strategy::all_instances() {
            let matrix =
                EffectiveMatrix::compute_for_pairs(&ex.hierarchy, &ex.eacm, strategy, &[]).unwrap();
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    matrix.default_sign(),
                    resolver.resolve(s, free, ex.read, strategy).unwrap(),
                    "strategy {strategy}, subject {s}"
                );
            }
        }
    }

    #[test]
    fn diff_exposes_unshared_pairs_instead_of_skipping_them() {
        let ex = motivating_example();
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let a = EffectiveMatrix::compute_for_pairs(
            &ex.hierarchy,
            &ex.eacm,
            strategy,
            &[(ex.obj, ex.read)],
        )
        .unwrap();
        let b = EffectiveMatrix::compute_for_pairs(
            &ex.hierarchy,
            &ex.eacm,
            "D+P+".parse().unwrap(),
            &[(ObjectId(5), ex.read)],
        )
        .unwrap();
        let diff = a.diff(&b);
        // No shared pair, so no comparable cell changed …
        assert!(diff.changed.is_empty());
        // … but the report is NOT empty: both pairs went uncompared and
        // the default column flips.
        assert!(!diff.is_empty());
        assert_eq!(diff.only_in_self, vec![(ex.obj, ex.read)]);
        assert_eq!(diff.only_in_other, vec![(ObjectId(5), ex.read)]);
        assert_eq!(diff.skipped().count(), 2);
        assert!(diff.default_flip());
    }

    #[test]
    fn shared_sweep_columns_match_per_strategy_matrices() {
        let ex = motivating_example();
        let strategies = Strategy::all_instances();
        let columns =
            columns_for_strategies(&ex.hierarchy, &ex.eacm, ex.obj, ex.read, &strategies).unwrap();
        assert_eq!(columns.len(), strategies.len());
        for (strategy, column) in strategies.iter().zip(&columns) {
            let matrix = EffectiveMatrix::compute_for_pairs(
                &ex.hierarchy,
                &ex.eacm,
                *strategy,
                &[(ex.obj, ex.read)],
            )
            .unwrap();
            for s in ex.hierarchy.subjects() {
                assert_eq!(
                    column[s.index()],
                    matrix.sign(s, ex.obj, ex.read).unwrap(),
                    "strategy {strategy}, subject {s}"
                );
            }
        }
    }

    #[test]
    fn unmaterialised_pairs_return_none() {
        let ex = motivating_example();
        let matrix =
            EffectiveMatrix::compute(&ex.hierarchy, &ex.eacm, "P+".parse().unwrap()).unwrap();
        assert_eq!(matrix.sign(ex.user, ObjectId(42), ex.read), None);
    }
}
