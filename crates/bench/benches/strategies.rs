//! Ablation C: cost profile of the 48 strategy instances.
//!
//! The unified algorithm's pitch is that *any* strategy runs on the same
//! propagated data; this bench verifies the resolution step itself is
//! both cheap (next to propagation) and uniform across instances, and
//! measures a full resolve under one representative of each policy shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucra_bench::fixtures::{livelink_fixture, PAIR};
use ucra_core::{resolve_histogram, Resolver, Strategy};

fn bench_strategies(c: &mut Criterion) {
    let (l, eacm) = livelink_fixture(2007, 0.5);
    let resolver = Resolver::new(&l.hierarchy, &eacm);
    let sink = *l.users.last().expect("users exist");
    let hist = resolver
        .all_rights_histogram(sink, PAIR.0, PAIR.1)
        .expect("propagates");

    // Resolution step alone, all 48 instances in one batch.
    c.bench_function("resolve_histogram_all_48", |b| {
        let all = Strategy::all_instances();
        b.iter(|| {
            let mut pos = 0usize;
            for &s in &all {
                pos += (resolve_histogram(&hist, s).expect("total").sign == ucra_core::Sign::Pos)
                    as usize;
            }
            pos
        })
    });

    // End-to-end resolve for one representative per policy shape.
    let mut group = c.benchmark_group("full_resolve_by_shape");
    for mnemonic in ["D-LP-", "D+GMP+", "D-MP-", "LMP+", "MGP-", "P+"] {
        let strategy: Strategy = mnemonic.parse().expect("mnemonic");
        group.bench_with_input(BenchmarkId::from_parameter(mnemonic), &strategy, |b, &s| {
            b.iter(|| resolver.resolve(sink, PAIR.0, PAIR.1, s).expect("total"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
