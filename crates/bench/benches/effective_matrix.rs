//! Ablation D: materialising the effective matrix — one counting sweep
//! per `(object, right)` pair, sequential vs parallel — plus the cost of
//! a strategy-switch impact report (`EffectiveMatrix::diff`).
//!
//! The paper (related work, on Jajodia et al.) warns that materialising
//! effective matrices is expensive; this bench quantifies it for the
//! sweep-based materialisation, which is `O(pairs · (V + E))` rather than
//! per-cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucra_core::{EffectiveMatrix, ObjectId, RightId, Strategy};
use ucra_workload::auth::assign_matrix;
use ucra_workload::livelink::{livelink, LivelinkConfig};
use ucra_workload::rng;

fn bench_effective(c: &mut Criterion) {
    let mut r = rng(2007);
    let org = livelink(
        LivelinkConfig {
            groups: 1500,
            roots: 10,
            users: 400,
            ..Default::default()
        },
        &mut r,
    );
    let pairs_n = 8u32;
    let eacm = assign_matrix(&org.hierarchy, pairs_n, 1, 0.01, 0.3, &mut r);
    let pairs: Vec<(ObjectId, RightId)> = (0..pairs_n).map(|o| (ObjectId(o), RightId(0))).collect();
    let strategy: Strategy = "D-LP-".parse().expect("mnemonic");

    let mut group = c.benchmark_group("ablation_effective_matrix");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("materialise", format!("{threads}thread")),
            &threads,
            |b, &t| {
                b.iter(|| {
                    EffectiveMatrix::compute_for_pairs_parallel(
                        &org.hierarchy,
                        &eacm,
                        strategy,
                        &pairs,
                        t,
                    )
                    .expect("materialises")
                    .cell_count()
                })
            },
        );
    }
    // The strategy-switch impact report on pre-materialised matrices.
    let closed =
        EffectiveMatrix::compute_for_pairs(&org.hierarchy, &eacm, strategy, &pairs).unwrap();
    let open = EffectiveMatrix::compute_for_pairs(
        &org.hierarchy,
        &eacm,
        "D+LP+".parse().expect("mnemonic"),
        &pairs,
    )
    .unwrap();
    group.bench_function("diff_closed_vs_open", |b| {
        b.iter(|| closed.diff(&open).changed.len())
    });
    group.finish();
}

criterion_group!(benches, bench_effective);
criterion_main!(benches);
