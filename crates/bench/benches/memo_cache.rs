//! Ablation B: the memoised resolver (paper future work #1) against
//! per-query resolution when many sinks share ancestors.
//!
//! The cached sweep computes every subject's histogram once per
//! `(object, right)` pair; a batch of per-sink queries then costs one
//! lookup each, versus one ancestor-sub-graph propagation each without
//! the cache.

use criterion::{criterion_group, criterion_main, Criterion};
use ucra_bench::fixtures::{livelink_fixture, PAIR};
use ucra_core::{MemoResolver, Resolver, Strategy};

fn bench_memo(c: &mut Criterion) {
    let (l, eacm) = livelink_fixture(2007, 0.5);
    let strategy: Strategy = "D-LP-".parse().expect("paper strategy");
    let sinks: Vec<_> = l.users.iter().copied().step_by(29).collect();

    let mut group = c.benchmark_group("ablation_memo_cache");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("uncached_batch", |b| {
        let resolver = Resolver::new(&l.hierarchy, &eacm);
        b.iter(|| {
            let mut pos = 0usize;
            for &s in &sinks {
                pos += (resolver
                    .resolve(s, PAIR.0, PAIR.1, strategy)
                    .expect("total")
                    == ucra_core::Sign::Pos) as usize;
            }
            pos
        })
    });
    group.bench_function("memoised_batch_incl_sweep", |b| {
        // Cache built inside the iteration: measures sweep + lookups.
        b.iter(|| {
            let memo = MemoResolver::new(&l.hierarchy, &eacm);
            let mut pos = 0usize;
            for &s in &sinks {
                pos += (memo.resolve(s, PAIR.0, PAIR.1, strategy).expect("total")
                    == ucra_core::Sign::Pos) as usize;
            }
            pos
        })
    });
    group.bench_function("memoised_batch_warm", |b| {
        let memo = MemoResolver::new(&l.hierarchy, &eacm);
        // Warm the cache once.
        memo.resolve(sinks[0], PAIR.0, PAIR.1, strategy)
            .expect("total");
        b.iter(|| {
            let mut pos = 0usize;
            for &s in &sinks {
                pos += (memo.resolve(s, PAIR.0, PAIR.1, strategy).expect("total")
                    == ucra_core::Sign::Pos) as usize;
            }
            pos
        })
    });
    group.finish();
}

criterion_group!(benches, bench_memo);
criterion_main!(benches);
