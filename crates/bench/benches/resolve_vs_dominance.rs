//! Criterion companion to Figure 7(a): the unified `Resolve()` against
//! the specialised `Dominance()` baseline on Livelink-like data
//! (authorization rate 0.7 %).

use criterion::{criterion_group, criterion_main, Criterion};
use ucra_bench::fixtures::{livelink_fixture, PAIR};
use ucra_core::engine::path_enum::{self, PropagateOptions};
use ucra_core::{dominance, resolve_histogram, DistanceHistogram, Resolver, Strategy};

fn bench_resolve_vs_dominance(c: &mut Criterion) {
    let (l, eacm) = livelink_fixture(2007, 0.5);
    let strategy: Strategy = "D-LP-".parse().expect("paper strategy");
    // A fixed sample of sinks keeps the bench fast but representative.
    let sinks: Vec<_> = l.users.iter().copied().step_by(97).collect();

    let mut group = c.benchmark_group("fig7a_resolve_vs_dominance");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("resolve_path_enum_D-LP-", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &s in &sinks {
                let records = path_enum::propagate(
                    &l.hierarchy,
                    &eacm,
                    s,
                    PAIR.0,
                    PAIR.1,
                    PropagateOptions::with_budget(500_000_000),
                )
                .expect("fits budget");
                let hist = DistanceHistogram::from_records(&records).expect("fits u128");
                acc += (resolve_histogram(&hist, strategy).expect("total").sign
                    == ucra_core::Sign::Pos) as usize;
            }
            acc
        })
    });
    group.bench_function("resolve_counting_D-LP-", |b| {
        let resolver = Resolver::new(&l.hierarchy, &eacm);
        b.iter(|| {
            let mut acc = 0usize;
            for &s in &sinks {
                acc += (resolver
                    .resolve(s, PAIR.0, PAIR.1, strategy)
                    .expect("total")
                    == ucra_core::Sign::Pos) as usize;
            }
            acc
        })
    });
    group.bench_function("dominance", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &s in &sinks {
                acc += (dominance(&l.hierarchy, &eacm, s, PAIR.0, PAIR.1).expect("sink")
                    == ucra_core::Sign::Pos) as usize;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_resolve_vs_dominance);
criterion_main!(benches);
