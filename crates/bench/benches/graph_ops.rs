//! Micro-benchmarks of the graph substrate operations on the query hot
//! path: ancestor sub-graph extraction (Step 1 of every query), upward
//! BFS (the Dominance() walk), bulk DAG construction, and the path
//! statistics behind Figure 7's `d` axis.
//!
//! These justify the substrate-level choices DESIGN.md records — in
//! particular the `O(V + E_kept)` induced-sub-graph construction with
//! unchecked edge insertion, which cut per-query cost ~3× on the
//! Livelink workload (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucra_graph::{paths, subgraph, traverse, Dag};
use ucra_workload::livelink::{livelink, LivelinkConfig};
use ucra_workload::rng;

fn bench_graph_ops(c: &mut Criterion) {
    let mut r = rng(2007);
    let l = livelink(LivelinkConfig::default(), &mut r);
    let dag = l.hierarchy.graph();
    // A deep user and a shallow one.
    let deep = *l
        .users
        .iter()
        .max_by_key(|&&u| {
            let sub = subgraph::ancestor_subgraph(dag, u);
            sub.dag.node_count()
        })
        .expect("users exist");
    let shallow = *l
        .users
        .iter()
        .min_by_key(|&&u| {
            let sub = subgraph::ancestor_subgraph(dag, u);
            sub.dag.node_count()
        })
        .expect("users exist");

    let mut group = c.benchmark_group("graph_ops");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (label, user) in [("deep_user", deep), ("shallow_user", shallow)] {
        group.bench_with_input(
            BenchmarkId::new("ancestor_subgraph", label),
            &user,
            |b, &u| b.iter(|| subgraph::ancestor_subgraph(dag, u).dag.node_count()),
        );
        group.bench_with_input(BenchmarkId::new("up_bfs", label), &user, |b, &u| {
            b.iter(|| paths::shortest_up_distances(dag, u).len())
        });
        group.bench_with_input(BenchmarkId::new("path_stats", label), &user, |b, &u| {
            b.iter(|| {
                let sub = subgraph::ancestor_subgraph(dag, u);
                paths::path_stats_to(&sub.dag, sub.sink)
                    .expect("fits u128")
                    .len()
            })
        });
    }

    group.bench_function("topo_order_full_hierarchy", |b| {
        b.iter(|| traverse::topo_order(dag).len())
    });

    // Bulk vs incremental construction of the whole hierarchy.
    let edges: Vec<_> = dag.edges().collect();
    group.bench_function("from_edges_bulk", |b| {
        b.iter(|| {
            Dag::from_edges(dag.node_count(), edges.iter().copied())
                .expect("valid")
                .edge_count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
