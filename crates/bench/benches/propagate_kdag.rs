//! Criterion companion to Figure 6: `Propagate()` on KDAG(n) across
//! authorization rates (paper §4, synthetic experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucra_bench::fixtures::{kdag_with_auth, PAIR};
use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::engine::path_enum::{self, PropagateOptions};

fn bench_propagate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_propagate_kdag");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[12usize, 16] {
        for &rate in &[0.01f64, 0.05, 0.10] {
            let (hierarchy, eacm, sink) = kdag_with_auth(n, rate, 42);
            let label = format!("n{n}_rate{}", (rate * 100.0) as u32);
            group.bench_with_input(
                BenchmarkId::new("path_enum", &label),
                &(&hierarchy, &eacm, sink),
                |b, (h, e, s)| {
                    b.iter(|| {
                        path_enum::propagate(
                            h,
                            e,
                            *s,
                            PAIR.0,
                            PAIR.1,
                            PropagateOptions::with_budget(200_000_000),
                        )
                        .expect("fits budget")
                        .len()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("counting", &label),
                &(&hierarchy, &eacm, sink),
                |b, (h, e, s)| {
                    b.iter(|| {
                        counting::histogram(h, e, *s, PAIR.0, PAIR.1, PropagationMode::Both)
                            .expect("no overflow")
                            .strata()
                            .count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_propagate);
criterion_main!(benches);
