//! Ablation A: the three bag-equivalent propagation implementations —
//! path enumeration (paper-faithful), counting DP (our optimisation), and
//! the literal relational-algebra spec (oracle) — on the same queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucra_bench::fixtures::{kdag_with_auth, to_relational, PAIR};
use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::engine::path_enum::{self, PropagateOptions};
use ucra_relational::spec;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engines");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[10usize, 14] {
        let (hierarchy, eacm, sink) = kdag_with_auth(n, 0.05, 7);
        let (sdag_rel, eacm_rel) = to_relational(&hierarchy, &eacm);
        let sink_i = sink.index() as i64;

        group.bench_with_input(
            BenchmarkId::new("path_enum", n),
            &(&hierarchy, &eacm, sink),
            |b, (h, e, s)| {
                b.iter(|| {
                    path_enum::propagate(
                        h,
                        e,
                        *s,
                        PAIR.0,
                        PAIR.1,
                        PropagateOptions::with_budget(200_000_000),
                    )
                    .expect("fits budget")
                    .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("counting", n),
            &(&hierarchy, &eacm, sink),
            |b, (h, e, s)| {
                b.iter(|| {
                    counting::histogram(h, e, *s, PAIR.0, PAIR.1, PropagationMode::Both)
                        .expect("no overflow")
                        .strata()
                        .count()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("relational_spec", n),
            &(&sdag_rel, &eacm_rel, sink_i),
            |b, (sdag, eacm, s)| {
                b.iter(|| {
                    spec::propagate(sdag, eacm, *s, 0, 0)
                        .expect("spec propagates")
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
