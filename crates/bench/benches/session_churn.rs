//! Ablation E: cache maintenance under churn.
//!
//! The related-work critique the paper levels at materialised effective
//! matrices is that updates destroy them. The sweep cache's claim is
//! that an explicit-matrix update costs exactly one `(object, right)`
//! sweep. This bench replays the same mixed query/update trace through
//! (a) a self-maintaining [`AccessSession`] and (b) a cache-free
//! resolver, at increasing update shares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucra_core::{AccessSession, Resolver, Sign, Strategy};
use ucra_workload::auth::assign_matrix;
use ucra_workload::churn::{trace, ChurnConfig, ChurnOp};
use ucra_workload::livelink::{livelink, LivelinkConfig};
use ucra_workload::rng;

fn bench_churn(c: &mut Criterion) {
    let mut r = rng(2007);
    let org = livelink(
        LivelinkConfig {
            groups: 1200,
            roots: 8,
            users: 300,
            ..Default::default()
        },
        &mut r,
    );
    let base_eacm = assign_matrix(&org.hierarchy, 4, 1, 0.01, 0.3, &mut r);
    let strategy: Strategy = "D-LP-".parse().expect("mnemonic");

    let mut group = c.benchmark_group("ablation_session_churn");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for &update_share in &[0.0f64, 0.02, 0.20] {
        let ops = trace(
            ChurnConfig {
                ops: 600,
                update_share,
                objects: 4,
                rights: 1,
                ..Default::default()
            },
            &org.users,
            &org.groups,
            &mut r,
        );
        let label = format!("upd{}pct", (update_share * 100.0) as u32);

        group.bench_with_input(
            BenchmarkId::new("session_cached", &label),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let mut session =
                        AccessSession::new(org.hierarchy.clone(), base_eacm.clone(), strategy);
                    let mut granted = 0usize;
                    for op in ops {
                        match *op {
                            ChurnOp::Check {
                                subject,
                                object,
                                right,
                            } => {
                                granted += (session.check(subject, object, right).expect("total")
                                    == Sign::Pos)
                                    as usize;
                            }
                            ChurnOp::SetLabel {
                                subject,
                                object,
                                right,
                                sign,
                            } => {
                                // Contradictions with the base matrix are
                                // expected occasionally; unset-then-set keeps
                                // the trace applicable.
                                if session
                                    .set_authorization(subject, object, right, sign)
                                    .is_err()
                                {
                                    session.unset_authorization(subject, object, right);
                                    session
                                        .set_authorization(subject, object, right, sign)
                                        .expect("fresh after unset");
                                }
                            }
                            ChurnOp::UnsetLabel {
                                subject,
                                object,
                                right,
                            } => {
                                session.unset_authorization(subject, object, right);
                            }
                            ChurnOp::AddMembership { group, member } => {
                                // Duplicate edges are expected occasionally;
                                // both arms skip them identically.
                                let _ = session.add_membership(group, member);
                            }
                        }
                    }
                    granted
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("uncached", &label), &ops, |b, ops| {
            b.iter(|| {
                let mut hierarchy = org.hierarchy.clone();
                let mut eacm = base_eacm.clone();
                let mut granted = 0usize;
                for op in ops {
                    match *op {
                        ChurnOp::Check {
                            subject,
                            object,
                            right,
                        } => {
                            let resolver = Resolver::new(&hierarchy, &eacm);
                            granted += (resolver
                                .resolve(subject, object, right, strategy)
                                .expect("total")
                                == Sign::Pos) as usize;
                        }
                        ChurnOp::SetLabel {
                            subject,
                            object,
                            right,
                            sign,
                        } => {
                            if eacm.set(subject, object, right, sign).is_err() {
                                eacm.unset(subject, object, right);
                                eacm.set(subject, object, right, sign)
                                    .expect("fresh after unset");
                            }
                        }
                        ChurnOp::UnsetLabel {
                            subject,
                            object,
                            right,
                        } => {
                            eacm.unset(subject, object, right);
                        }
                        ChurnOp::AddMembership { group, member } => {
                            let _ = hierarchy.add_membership(group, member);
                        }
                    }
                }
                granted
            })
        });
    }

    // Edit-heavy variant: every second update is a membership edge. The
    // incremental repair path must keep the cache alive — zero full
    // invalidations, and far fewer repaired rows than rebuilding every
    // cached table would cost.
    let ops = trace(
        ChurnConfig {
            ops: 600,
            update_share: 0.20,
            membership_share: 0.5,
            objects: 4,
            rights: 1,
            ..Default::default()
        },
        &org.users,
        &org.groups,
        &mut r,
    );
    group.bench_with_input(
        BenchmarkId::new("session_cached", "membership_heavy"),
        &ops,
        |b, ops| {
            b.iter(|| {
                let mut session =
                    AccessSession::new(org.hierarchy.clone(), base_eacm.clone(), strategy);
                let mut granted = 0usize;
                for op in ops {
                    match *op {
                        ChurnOp::Check {
                            subject,
                            object,
                            right,
                        } => {
                            granted += (session.check(subject, object, right).expect("total")
                                == Sign::Pos) as usize;
                        }
                        ChurnOp::SetLabel {
                            subject,
                            object,
                            right,
                            sign,
                        } => {
                            if session
                                .set_authorization(subject, object, right, sign)
                                .is_err()
                            {
                                session.unset_authorization(subject, object, right);
                                session
                                    .set_authorization(subject, object, right, sign)
                                    .expect("fresh after unset");
                            }
                        }
                        ChurnOp::UnsetLabel {
                            subject,
                            object,
                            right,
                        } => {
                            session.unset_authorization(subject, object, right);
                        }
                        ChurnOp::AddMembership { group, member } => {
                            let _ = session.add_membership(group, member);
                        }
                    }
                }
                let stats = session.stats();
                assert_eq!(
                    stats.full_invalidations, 0,
                    "membership edits must never flush the cache"
                );
                if stats.partial_repairs > 0 {
                    assert!(
                        stats.rows_repaired
                            < stats.partial_repairs * org.hierarchy.subject_count() as u64,
                        "repair must touch fewer rows than a full rebuild"
                    );
                }
                granted
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
