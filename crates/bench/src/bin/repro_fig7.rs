//! Regenerates the paper's **Figure 7(a)** (Resolve() vs Dominance() on
//! Livelink data, against `d`) and **Figure 7(b)** (`d` vs the number of
//! nodes in the sub-graph).
//!
//! Paper protocol (§4): the Livelink hierarchy (>8000 nodes, 22,000
//! edges, 1582 sinks — here the calibrated synthetic stand-in, see
//! DESIGN.md §2.6); authorization rate 0.7 % of edges; measure per-sink
//! query time. `Dominance()` is averaged over three negative-share
//! placements (1 %, 50 %, 100 %) because its early exit depends on where
//! the negatives sit; `Resolve()` does not. Headline number: the unified
//! algorithm's flexibility cost — the paper reports Resolve() ≈ 27 %
//! slower than the specialised Dominance().
//!
//! We measure **two** Dominance implementations:
//!
//! * `dominance_specialized` — the same-substrate variant (the identical
//!   per-path propagation machinery, with only D⁻LP⁻'s legal early
//!   exits). This is the fair flexibility-overhead analogue of the
//!   paper's comparison, where both algorithms ran on the same engine.
//! * `dominance` — the graph-native upward BFS a production Rust system
//!   would ship; it is asymptotically cheaper (`O(V+E)` vs `O(n+d)`) and
//!   reported for context.
//!
//! ```text
//! cargo run --release -p ucra-bench --bin repro_fig7 [--quick]
//! ```
//!
//! Writes `results/fig7a.csv` (per-sink timings) and `results/fig7b.csv`
//! (d vs sub-graph size).

use ucra_bench::fixtures::{livelink_fixture, PAIR};
use ucra_bench::output::{render_table, write_csv};
use ucra_bench::timing::{fmt_ns, mean_ns};
use ucra_core::engine::path_enum::{self, PropagateOptions};
use ucra_core::{
    dominance, dominance_specialized, dominance_with_stats, resolve_histogram, DistanceHistogram,
    Strategy,
};
use ucra_workload::stats::query_stats;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let strategy: Strategy = "D-LP-".parse().expect("paper strategy");

    // Resolve() is placement-independent; measure it on the 50 % split.
    // Dominance() is averaged over the three placements of §4.
    let shares = [0.01, 0.50, 1.00];
    let fixtures: Vec<_> = shares.iter().map(|&s| livelink_fixture(2007, s)).collect();
    let (l_mid, eacm_mid) = &fixtures[1];

    let stride = if quick { 50 } else { 1 };
    let sinks: Vec<_> = l_mid.users.iter().copied().step_by(stride).collect();
    println!(
        "Figure 7: {} sinks on a Livelink-like hierarchy ({} nodes, {} edges, rate 0.7%)\n",
        sinks.len(),
        l_mid.hierarchy.subject_count(),
        l_mid.hierarchy.membership_count()
    );

    let mut rows_a = Vec::with_capacity(sinks.len());
    let mut rows_b = Vec::with_capacity(sinks.len());
    let mut resolve_samples = Vec::with_capacity(sinks.len());
    let mut dom_spec_samples = Vec::with_capacity(sinks.len());
    let mut dom_bfs_samples = Vec::with_capacity(sinks.len());

    for &sink in &sinks {
        let stats = query_stats(&l_mid.hierarchy, eacm_mid, sink, PAIR.0, PAIR.1);

        // Resolve(): the paper-faithful engine — Propagate() dominates,
        // so its cost tracks d.
        let start = std::time::Instant::now();
        let records = path_enum::propagate(
            &l_mid.hierarchy,
            eacm_mid,
            sink,
            PAIR.0,
            PAIR.1,
            PropagateOptions::with_budget(500_000_000),
        )
        .expect("Livelink-scale queries fit the budget");
        let hist = DistanceHistogram::from_records(&records).expect("counts fit u128");
        let sign = resolve_histogram(&hist, strategy)
            .expect("resolution is total")
            .sign;
        let resolve_ns = start.elapsed().as_nanos();
        std::hint::black_box(sign);

        // Dominance, both variants, averaged over the three placements.
        let mut spec = Vec::with_capacity(3);
        let mut bfs = Vec::with_capacity(3);
        for (l, eacm) in &fixtures {
            let start = std::time::Instant::now();
            let s1 = dominance_specialized(&l.hierarchy, eacm, sink, PAIR.0, PAIR.1)
                .expect("sink exists");
            spec.push(start.elapsed().as_nanos());
            let start = std::time::Instant::now();
            let s2 = dominance(&l.hierarchy, eacm, sink, PAIR.0, PAIR.1).expect("sink exists");
            bfs.push(start.elapsed().as_nanos());
            std::hint::black_box((s1, s2));
        }
        let dom_spec_ns = mean_ns(&spec);
        let dom_bfs_ns = mean_ns(&bfs);

        resolve_samples.push(resolve_ns);
        dom_spec_samples.push(dom_spec_ns);
        dom_bfs_samples.push(dom_bfs_ns);
        rows_a.push(format!(
            "{},{},{},{},{},{}",
            sink.index(),
            stats.d,
            stats.subgraph_nodes,
            resolve_ns,
            dom_spec_ns,
            dom_bfs_ns
        ));
        rows_b.push(format!(
            "{},{},{}",
            sink.index(),
            stats.subgraph_nodes,
            stats.d
        ));
    }

    let resolve_avg = mean_ns(&resolve_samples);
    let dom_spec_avg = mean_ns(&dom_spec_samples);
    let dom_bfs_avg = mean_ns(&dom_bfs_samples);
    let overhead = |base: u128| {
        if base > 0 {
            100.0 * (resolve_avg as f64 - base as f64) / base as f64
        } else {
            f64::NAN
        }
    };

    println!(
        "average Resolve()  (D-LP-, path-enum)        : {}",
        fmt_ns(resolve_avg)
    );
    println!(
        "average Dominance() same-substrate           : {}",
        fmt_ns(dom_spec_avg)
    );
    println!(
        "average Dominance() graph-native BFS         : {}",
        fmt_ns(dom_bfs_avg)
    );
    println!(
        "flexibility overhead vs same-substrate       : {:.0}%",
        overhead(dom_spec_avg)
    );
    println!(
        "flexibility overhead vs graph-native         : {:.0}%",
        overhead(dom_bfs_avg)
    );
    println!(
        "paper reference: Resolve 1260 ms vs Dominance 920 ms ⇒ 27% (2007 testbed;\n\
         absolute numbers differ, the *ratio and shape* are the reproduction target)\n"
    );

    match write_csv(
        "fig7a",
        "sink,d,subgraph_nodes,resolve_ns,dominance_specialized_avg_ns,dominance_bfs_avg_ns",
        &rows_a,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    match write_csv("fig7b", "sink,subgraph_nodes,d", &rows_b) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    // The paper's placement-dependence claim: "the Dominance() algorithm
    // is dependent on the placement of negative authorizations whereas
    // the Resolve() algorithm is not". Show it directly: ancestors
    // visited and early-exit rate per negative share.
    let mut rows = Vec::new();
    for (share, (l, eacm)) in shares.iter().zip(&fixtures) {
        let mut visited_total = 0usize;
        let mut exits = 0usize;
        for &sink in &sinks {
            let (_, st) =
                dominance_with_stats(&l.hierarchy, eacm, sink, PAIR.0, PAIR.1).expect("sink");
            visited_total += st.visited;
            exits += st.early_exit as usize;
        }
        rows.push(vec![
            format!("{:.0}%", share * 100.0),
            format!("{:.1}", visited_total as f64 / sinks.len() as f64),
            format!("{:.0}%", 100.0 * exits as f64 / sinks.len() as f64),
        ]);
    }
    println!("\nDominance() placement dependence (BFS variant):");
    println!(
        "{}",
        render_table(
            &["negative share", "avg ancestors visited", "early-exit rate"],
            &rows
        )
    );
    println!(
        "\nexpected shapes (paper): 7(a) Resolve() grows with d; Dominance() scatters\n\
         below it with occasional spikes. 7(b) d is not determined by node count —\n\
         large sub-graphs can have small total path length."
    );
}
