//! `fused_sweep` — benchmark the columnar fused-sweep kernel against the
//! legacy per-pair BTreeMap sweep and measure thread scaling.
//!
//! ```text
//! cargo run --release -p ucra-bench --bin fused_sweep [-- --quick]
//! ```
//!
//! Writes `BENCH_sweep.json` at the repository root; `--quick` runs the
//! CI-sized shape in seconds.

use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = match ucra_bench::sweep::run(quick) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fused_sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    match ucra_bench::sweep::write_report(&report) {
        Ok(path) => {
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write BENCH_sweep.json: {e}");
            ExitCode::FAILURE
        }
    }
}
