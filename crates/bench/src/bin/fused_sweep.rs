//! `fused_sweep` — benchmark the columnar fused-sweep kernel against the
//! legacy per-pair BTreeMap sweep and measure thread scaling.
//!
//! ```text
//! cargo run --release -p ucra-bench --bin fused_sweep \
//!     [-- --quick] [--threads 1,2,4] [--backend scalar|sse2|avx2]
//! ```
//!
//! Writes `BENCH_sweep.json` at the repository root; `--quick` runs the
//! CI-sized shape in seconds. `--threads` takes a comma-separated list
//! of worker counts to sample (default: 2,4 and 8 when the host has 8
//! hardware threads). `--backend` pins the process-wide kernel backend
//! before any sweep runs (requests above the host's support level clamp
//! down); the report's `host.kernel_backend` records what actually ran.

use std::process::ExitCode;
use ucra_core::engine::simd::{pin_backend, Backend};

fn parse_threads(raw: &str) -> Result<Vec<usize>, String> {
    let counts = raw
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("--threads expects positive integers, got {part:?}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if counts.is_empty() {
        return Err("--threads expects at least one count".into());
    }
    Ok(counts)
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut threads: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                let Some(raw) = args.next() else {
                    eprintln!("--threads expects a comma-separated list, e.g. --threads 1,2,4");
                    return ExitCode::FAILURE;
                };
                match parse_threads(&raw) {
                    Ok(list) => threads = Some(list),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--backend" => {
                let Some(raw) = args.next() else {
                    eprintln!("--backend expects one of scalar, sse2, avx2");
                    return ExitCode::FAILURE;
                };
                let Ok(requested) = raw.parse::<Backend>() else {
                    eprintln!("unknown backend {raw:?} (expected scalar, sse2 or avx2)");
                    return ExitCode::FAILURE;
                };
                let selected = pin_backend(requested);
                if selected != requested {
                    eprintln!("note: backend {requested} unavailable or already pinned; running {selected}");
                }
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (expected --quick, --threads <list> or --backend <name>)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match threads {
        Some(list) => ucra_bench::sweep::run_with_threads(quick, &list),
        None => ucra_bench::sweep::run(quick),
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fused_sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    match ucra_bench::sweep::write_report(&report) {
        Ok(path) => {
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write BENCH_sweep.json: {e}");
            ExitCode::FAILURE
        }
    }
}
