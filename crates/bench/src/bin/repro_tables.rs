//! Regenerates the paper's Tables 1, 2, 3 and 4 from the motivating
//! example (Figures 1 and 3).
//!
//! ```text
//! cargo run -p ucra-bench --bin repro_tables
//! ```
//!
//! Output is checked against the published tables by the golden tests in
//! `tests/paper_tables.rs`; this binary is the human-readable rendering.

use ucra_bench::output::render_table;
use ucra_core::engine::path_enum::{self, PropagateOptions};
use ucra_core::motivating::motivating_example;
use ucra_core::{Resolver, Strategy, StrategyShape};

fn main() {
    let ex = motivating_example();
    let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);

    // ---- Figure 2 / §2.2: the ten combined strategies ------------------
    let mut rows = Vec::new();
    for shape in StrategyShape::all() {
        rows.push(vec![
            shape.name().to_string(),
            if shape.has_default() { "yes" } else { "no" }.to_string(),
            shape.instances().len().to_string(),
        ]);
    }
    println!("Figure 2 / §2.2: combined strategies and their instance counts");
    println!(
        "{}",
        render_table(&["shape", "default?", "instances"], &rows)
    );
    println!(
        "total: {} instances\n",
        StrategyShape::all()
            .iter()
            .map(|s| s.instances().len())
            .sum::<usize>()
    );

    // ---- Table 1: all read authorizations of User on obj -------------
    let records = resolver
        .all_rights_records(ex.user, ex.obj, ex.read)
        .expect("motivating example propagates");
    let mut rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                "User".to_string(),
                "obj".to_string(),
                "read".to_string(),
                r.dis.to_string(),
                r.mode.to_string(),
            ]
        })
        .collect();
    rows.sort_by(|a, b| (a[3].clone(), a[4].clone()).cmp(&(b[3].clone(), b[4].clone())));
    println!("Table 1. All read authorizations of User on obj");
    println!(
        "{}",
        render_table(&["subject", "object", "right", "dis", "mode"], &rows)
    );

    // ---- Table 2: resolved authorization for each combined strategy --
    let mut rows = Vec::new();
    for strategy in Strategy::all_instances() {
        let sign = resolver
            .resolve(ex.user, ex.obj, ex.read, strategy)
            .expect("resolution is total");
        rows.push(vec![strategy.mnemonic(), sign.to_string()]);
    }
    rows.sort();
    println!("Table 2. Resolved authorization for each of the 48 strategy instances");
    println!("{}", render_table(&["strategy", "mode"], &rows));

    // ---- Table 3: trace of Resolve() for eight selected strategies ---
    let selected = [
        "D+LMP+", "D-GMP-", "D-MP-", "D-LP+", "D+GP-", "GMP-", "P-", "MGP-",
    ];
    let mut rows = Vec::new();
    for mnemonic in selected {
        let strategy: Strategy = mnemonic.parse().expect("paper mnemonic");
        let res = resolver
            .resolve_traced(ex.user, ex.obj, ex.read, strategy)
            .expect("resolution is total");
        let opt = |v: Option<u128>| v.map_or("n/a".to_string(), |x| x.to_string());
        let auth = match &res.auth {
            None => "n/a".to_string(),
            Some(set) if set.is_empty() => "{}".to_string(),
            Some(set) => set
                .iter()
                .map(|s| s.symbol().to_string())
                .collect::<Vec<_>>()
                .join(","),
        };
        rows.push(vec![
            mnemonic.to_string(),
            opt(res.c1),
            opt(res.c2),
            auth,
            res.sign.to_string(),
            res.line.line_number().to_string(),
        ]);
    }
    println!("Table 3. Trace of Resolve()");
    println!(
        "{}",
        render_table(&["strategy", "c1", "c2", "Auth", "mode", "line"], &rows)
    );
    println!(
        "note: for MGP- the paper's Table 3 prints c1=1, c2=0; Fig. 4 as published\n\
         (and the paper's own §2.2 prose) give c1=2, c2=1 — same decision, `+` at\n\
         line 6. This binary follows Fig. 4. See EXPERIMENTS.md.\n"
    );

    // ---- Table 4: the full propagation relation P ---------------------
    let all = path_enum::propagate_all(
        &ex.hierarchy,
        &ex.eacm,
        ex.user,
        ex.obj,
        ex.read,
        PropagateOptions::default(),
    )
    .expect("motivating example propagates");
    let mut rows = Vec::new();
    for (subject, records) in &all {
        for r in records {
            rows.push(vec![
                ex.name(*subject),
                "obj".to_string(),
                "read".to_string(),
                r.dis.to_string(),
                r.mode.to_string(),
            ]);
        }
    }
    rows.sort_by_key(|r| {
        (
            r[3].parse::<u32>().expect("dis"),
            r[0].clone(),
            r[4].clone(),
        )
    });
    println!("Table 4. All read authorizations on obj (relation P)");
    println!(
        "{}",
        render_table(&["subject", "object", "right", "dis", "mode"], &rows)
    );
}
