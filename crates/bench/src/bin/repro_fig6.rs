//! Regenerates the paper's **Figure 6**: Function `Propagate()` CPU time
//! on synthetic KDAG(n) data as a function of the authorization rate.
//!
//! Paper protocol (§4): random complete DAGs of three sizes; 0.5 %–10 %
//! of edges selected at random, source nodes labeled; CPU time of
//! `Propagate()` averaged over 20 random repetitions per point. Expected
//! shape: *"for small authorization rates … the running time is linearly
//! proportional to the authorization rates."*
//!
//! ```text
//! cargo run --release -p ucra-bench --bin repro_fig6 [--quick]
//! ```
//!
//! Writes `results/fig6.csv` with one row per (size, rate) cell, for both
//! the paper-faithful path-enumeration engine and the counting engine.

use ucra_bench::fixtures::PAIR;
use ucra_bench::output::{render_table, write_csv};
use ucra_bench::timing::{fmt_ns, mean_ns};
use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::engine::path_enum::{self, PropagateOptions};
use ucra_workload::auth::{assign_by_edges, AuthConfig};
use ucra_workload::kdag::kdag;
use ucra_workload::rng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // KDAG sizes: path-enumeration cost on a KDAG grows with 2^n, so the
    // stress sizes stay modest — exactly the point of the stress test.
    let sizes: &[usize] = if quick { &[12, 16] } else { &[12, 16, 18] };
    let rates: &[f64] = if quick {
        &[0.01, 0.05, 0.10]
    } else {
        &[
            0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10,
        ]
    };
    let reps = if quick { 5 } else { 20 };

    println!("Figure 6: Propagate() on synthetic KDAG(n) data");
    println!("(averaged over {reps} random repetitions per point)\n");

    let mut csv_rows = Vec::new();
    let mut table_rows = Vec::new();
    for &n in sizes {
        for &rate in rates {
            let mut path_samples = Vec::with_capacity(reps);
            let mut count_samples = Vec::with_capacity(reps);
            let mut labeled_total = 0usize;
            for rep in 0..reps {
                let seed = (n as u64) * 10_000 + (rate * 1000.0) as u64 * 100 + rep as u64;
                let mut r = rng(seed);
                let k = kdag(n, &mut r);
                let (eacm, labeled) = assign_by_edges(
                    &k.hierarchy,
                    AuthConfig {
                        rate,
                        negative_share: 0.5,
                        object: PAIR.0,
                        right: PAIR.1,
                    },
                    &mut r,
                );
                labeled_total += labeled.len();

                let start = std::time::Instant::now();
                let recs = path_enum::propagate(
                    &k.hierarchy,
                    &eacm,
                    k.sink,
                    PAIR.0,
                    PAIR.1,
                    PropagateOptions::with_budget(200_000_000),
                )
                .expect("budget sized for the largest stress case");
                path_samples.push(start.elapsed().as_nanos());
                std::hint::black_box(recs.len());

                let start = std::time::Instant::now();
                let hist = counting::histogram(
                    &k.hierarchy,
                    &eacm,
                    k.sink,
                    PAIR.0,
                    PAIR.1,
                    PropagationMode::Both,
                )
                .expect("counting cannot overflow at n ≤ 20");
                count_samples.push(start.elapsed().as_nanos());
                std::hint::black_box(hist.is_empty());
            }
            let path_ns = mean_ns(&path_samples);
            let count_ns = mean_ns(&count_samples);
            let avg_labeled = labeled_total as f64 / reps as f64;
            table_rows.push(vec![
                n.to_string(),
                format!("{:.1}%", rate * 100.0),
                format!("{avg_labeled:.1}"),
                fmt_ns(path_ns),
                fmt_ns(count_ns),
            ]);
            csv_rows.push(format!("{n},{rate},{avg_labeled:.2},{path_ns},{count_ns}"));
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "n",
                "auth rate",
                "avg labeled",
                "Propagate() path-enum",
                "counting engine"
            ],
            &table_rows
        )
    );
    match write_csv(
        "fig6",
        "kdag_n,auth_rate,avg_labeled_subjects,propagate_path_enum_ns,counting_ns",
        &csv_rows,
    ) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    println!(
        "\nexpected shape (paper): run time grows linearly with the authorization\n\
         rate at small rates; KDAGs stress-test path multiplicity."
    );
}
