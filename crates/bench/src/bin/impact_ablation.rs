//! `impact_ablation` — the overlay's cone-pruned diff vs a full
//! recompute, on the deep-and-wide stress workload.
//!
//! ```text
//! cargo run --release -p ucra-bench --bin impact_ablation [-- --quick]
//! ```
//!
//! Two ways to answer "what does this edit script change":
//!
//! * **overlay** — [`ImpactAnalysis::analyze`]: evaluate the script on a
//!   copy-on-write session and refresh only the columns inside each
//!   edit's static blast cone (the cone's soundness makes the pruning
//!   exact);
//! * **full** — apply the script to plain clones and recompute the whole
//!   effective matrix from scratch on the edited side, then diff against
//!   the (pre-materialised) base matrix.
//!
//! The two reports are asserted equal before any number is printed, so
//! the speedup is between two implementations of the same answer.

use std::time::Instant;
use ucra_core::impact::{EditOp, EditScript, ImpactAnalysis};
use ucra_core::{Eacm, EffectiveMatrix, MatrixDiff, Strategy, SubjectDag};
use ucra_workload::edits::{edit_script, EditScriptConfig};
use ucra_workload::stress::{deep_wide, StressConfig};

/// Replays the script on plain clones — the baseline's "apply" step.
fn apply(
    hierarchy: &mut SubjectDag,
    eacm: &mut Eacm,
    strategy: &mut Strategy,
    script: &EditScript,
) {
    for op in &script.ops {
        match *op {
            EditOp::AddSubject => {
                hierarchy.add_subject();
            }
            EditOp::AddMembership { group, member } => {
                hierarchy
                    .add_membership(group, member)
                    .expect("generated scripts only add fresh acyclic edges");
            }
            EditOp::SetAuthorization {
                subject,
                object,
                right,
                sign,
            } => {
                eacm.set(subject, object, right, sign)
                    .expect("generated scripts never contradict");
            }
            EditOp::Revoke {
                subject,
                object,
                right,
            } => {
                eacm.unset(subject, object, right);
            }
            EditOp::SetStrategy { strategy: s } => *strategy = s,
        }
    }
}

/// Full-recompute baseline: clone, apply, then sweep every tracked pair
/// from scratch on **both** sides and diff. Neither side starts from a
/// cached matrix — the same starting point `ImpactAnalysis::analyze`
/// gets (its overlay session is cold too).
fn full_recompute(
    hierarchy: &SubjectDag,
    eacm: &Eacm,
    strategy: Strategy,
    pairs: &[(ucra_core::ObjectId, ucra_core::RightId)],
    script: &EditScript,
) -> MatrixDiff {
    let base = EffectiveMatrix::compute_for_pairs(hierarchy, eacm, strategy, pairs)
        .expect("stress model sweeps cleanly");
    let mut h = hierarchy.clone();
    let mut e = eacm.clone();
    let mut s = strategy;
    apply(&mut h, &mut e, &mut s, script);
    let edited =
        EffectiveMatrix::compute_for_pairs(&h, &e, s, pairs).expect("stress model sweeps cleanly");
    base.diff(&edited)
}

fn median(mut ns: Vec<u128>) -> u128 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let (cfg, reps) = if quick {
        (StressConfig::quick(), 3)
    } else {
        (StressConfig::full(), 5)
    };
    let mut rng = ucra_workload::rng(7);
    let model = deep_wide(cfg, &mut rng);
    let strategy: Strategy = "D+LMP+".parse().expect("valid mnemonic");
    let subjects = model.hierarchy.subject_count();
    println!(
        "impact_ablation ({}): {} subjects, {} labeled pairs, median of {} reps",
        if quick { "quick" } else { "full" },
        subjects,
        model.pairs.len(),
        reps,
    );

    // Script shapes bracket the realistic range: a small label-only
    // change set (narrow cones), a small mixed set (membership edits
    // have wide cones under defaulting strategies), and a bulk
    // migration-sized script.
    let shapes = [
        (
            "4 label edits   ",
            EditScriptConfig {
                ops: 4,
                subject_share: 0.0,
                membership_share: 0.0,
                ..Default::default()
            },
        ),
        (
            "4 mixed edits   ",
            EditScriptConfig {
                ops: 4,
                ..Default::default()
            },
        ),
        (
            "32 mixed edits  ",
            EditScriptConfig {
                ops: 32,
                ..Default::default()
            },
        ),
    ];
    for (label, config) in shapes {
        let script = edit_script(&model.hierarchy, &model.eacm, config, &mut rng);
        // The same tracked-pair universe the analyzer uses: base labels
        // plus script-touched pairs.
        let mut pairs = model.eacm.object_right_pairs();
        for op in &script.ops {
            if let EditOp::SetAuthorization { object, right, .. }
            | EditOp::Revoke { object, right, .. } = *op
            {
                pairs.push((object, right));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        // Both paths must produce the same report before timing means
        // anything.
        let analysis = ImpactAnalysis::analyze(&model.hierarchy, &model.eacm, strategy, &script)
            .expect("analyze succeeds on generated scripts");
        let oracle = full_recompute(&model.hierarchy, &model.eacm, strategy, &pairs, &script);
        assert_eq!(
            analysis.diff, oracle,
            "overlay diff must equal full recompute"
        );
        assert_eq!(analysis.overlay_stats.full_invalidations, 0);

        let mut overlay_ns = Vec::with_capacity(reps);
        let mut full_ns = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            let a = ImpactAnalysis::analyze(&model.hierarchy, &model.eacm, strategy, &script)
                .expect("analyze succeeds");
            overlay_ns.push(t.elapsed().as_nanos());
            std::hint::black_box(a);

            let t = Instant::now();
            let d = full_recompute(&model.hierarchy, &model.eacm, strategy, &pairs, &script);
            full_ns.push(t.elapsed().as_nanos());
            std::hint::black_box(d);
        }
        let overlay = median(overlay_ns);
        let full = median(full_ns);
        println!(
            "  {label}: overlay {:>10}  full recompute {:>10}  speedup {:>5.2}x  \
             ({} diff cells, {} cone-bounded)",
            ucra_bench::timing::fmt_ns(overlay),
            ucra_bench::timing::fmt_ns(full),
            full as f64 / overlay as f64,
            analysis.diff.changed.len(),
            analysis.cone_cell_bound(),
        );
    }
}
