//! `serve_load` — drive the HTTP daemon with concurrent read-heavy
//! traffic and interleaved edits.
//!
//! ```text
//! cargo run --release -p ucra-bench --bin serve_load [-- --quick]
//! ```
//!
//! Writes `BENCH_serve.json` at the repository root; `--quick` runs the
//! CI-sized load in a couple of seconds.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("unknown argument {other:?} (expected --quick)");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match ucra_bench::serve::run(quick) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve_load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    match ucra_bench::serve::write_report(&report) {
        Ok(path) => {
            println!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write BENCH_serve.json: {e}");
            ExitCode::FAILURE
        }
    }
}
