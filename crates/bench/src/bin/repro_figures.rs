//! Renders the paper's figures as SVG from the CSVs the other repro
//! binaries write:
//!
//! * `results/fig6.svg`  — Propagate() time vs authorization rate (line
//!   chart, one series per KDAG size), from `fig6.csv`;
//! * `results/fig7a.svg` — Resolve() and Dominance() time vs `d`
//!   (scatter), from `fig7a.csv`;
//! * `results/fig7b.svg` — `d` vs sub-graph node count (scatter), from
//!   `fig7b.csv`.
//!
//! Run after `repro_fig6` and `repro_fig7`:
//!
//! ```text
//! cargo run --release -p ucra-bench --bin repro_fig6
//! cargo run --release -p ucra-bench --bin repro_fig7
//! cargo run --release -p ucra-bench --bin repro_figures
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use ucra_bench::plot::{line_chart, scatter_chart, Frame, Series, SERIES_COLORS};

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("results")
}

/// Tiny CSV reader: header + comma rows, all-numeric columns wanted by
/// name. Returns one Vec per requested column.
fn read_csv(path: &Path, columns: &[&str]) -> Result<Vec<Vec<f64>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {} (run the repro_fig* binaries first): {e}",
            path.display()
        )
    })?;
    let mut lines = text.lines();
    let header: Vec<&str> = lines
        .next()
        .ok_or_else(|| format!("{} is empty", path.display()))?
        .split(',')
        .collect();
    let idx: Vec<usize> = columns
        .iter()
        .map(|c| {
            header
                .iter()
                .position(|h| h == c)
                .ok_or_else(|| format!("{}: missing column `{c}`", path.display()))
        })
        .collect::<Result<_, _>>()?;
    let mut out = vec![Vec::new(); columns.len()];
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        for (slot, &ci) in idx.iter().enumerate() {
            let v: f64 = cells
                .get(ci)
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| format!("{} line {}: bad cell", path.display(), lineno + 2))?;
            out[slot].push(v);
        }
    }
    Ok(out)
}

fn write_svg(name: &str, svg: &str) {
    let path = results_dir().join(name);
    match std::fs::write(&path, svg) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn fig6() -> Result<(), String> {
    let cols = read_csv(
        &results_dir().join("fig6.csv"),
        &["kdag_n", "auth_rate", "propagate_path_enum_ns"],
    )?;
    let (ns, rates, times) = (&cols[0], &cols[1], &cols[2]);
    let mut by_n: BTreeMap<i64, Vec<(f64, f64)>> = BTreeMap::new();
    for i in 0..ns.len() {
        by_n.entry(ns[i] as i64)
            .or_default()
            .push((rates[i] * 100.0, times[i] / 1000.0));
    }
    let series: Vec<Series> = by_n
        .into_iter()
        .enumerate()
        .map(|(ix, (n, points))| Series {
            name: format!("KDAG({n})"),
            points,
            color: SERIES_COLORS[ix % SERIES_COLORS.len()],
        })
        .collect();
    let frame = Frame {
        title: "Figure 6 — Propagate() on synthetic KDAG data".into(),
        x_label: "authorization rate (% of edges)".into(),
        y_label: "Propagate() time (µs)".into(),
        ..Frame::default()
    };
    write_svg("fig6.svg", &line_chart(&frame, &series));
    Ok(())
}

fn fig7a() -> Result<(), String> {
    let cols = read_csv(
        &results_dir().join("fig7a.csv"),
        &["d", "resolve_ns", "dominance_specialized_avg_ns"],
    )?;
    let (d, resolve, dominance) = (&cols[0], &cols[1], &cols[2]);
    let series = vec![
        Series {
            name: "Resolve()".into(),
            points: d
                .iter()
                .zip(resolve)
                .map(|(&x, &y)| (x, y / 1000.0))
                .collect(),
            color: SERIES_COLORS[0],
        },
        Series {
            name: "Dominance()".into(),
            points: d
                .iter()
                .zip(dominance)
                .map(|(&x, &y)| (x, y / 1000.0))
                .collect(),
            color: SERIES_COLORS[1],
        },
    ];
    let frame = Frame {
        title: "Figure 7(a) — Resolve() vs Dominance() on Livelink-like data".into(),
        x_label: "d (total length of all propagation paths)".into(),
        y_label: "query time (µs)".into(),
        ..Frame::default()
    };
    write_svg("fig7a.svg", &scatter_chart(&frame, &series));
    Ok(())
}

fn fig7b() -> Result<(), String> {
    let cols = read_csv(&results_dir().join("fig7b.csv"), &["subgraph_nodes", "d"])?;
    let series = vec![Series {
        name: "sink".into(),
        points: cols[0]
            .iter()
            .zip(&cols[1])
            .map(|(&x, &y)| (x, y))
            .collect(),
        color: SERIES_COLORS[0],
    }];
    let frame = Frame {
        title: "Figure 7(b) — total path length vs sub-graph size".into(),
        x_label: "nodes in the ancestor sub-graph".into(),
        y_label: "d".into(),
        ..Frame::default()
    };
    write_svg("fig7b.svg", &scatter_chart(&frame, &series));
    Ok(())
}

fn main() {
    let mut failed = false;
    for result in [fig6(), fig7a(), fig7b()] {
        if let Err(e) = result {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
