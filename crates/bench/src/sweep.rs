//! The `fused_sweep` benchmark: columnar fused-sweep kernel vs. the
//! legacy BTreeMap-per-node sweep, plus thread scaling of the
//! work-stealing parallel driver over a shared [`ucra_core::SweepContext`].
//!
//! Three timings over the same deep-and-wide stress model
//! ([`ucra_workload::stress::deep_wide`]) and the same strategy:
//!
//! * **reference** — the pre-kernel `compute_for_pairs` path: one
//!   [`histograms_all_reference`](ucra_core::engine::counting::histograms_all_reference)
//!   sweep per pair (a `BTreeMap` histogram per node), then
//!   `resolve_histogram` per row.
//! * **fused** — [`EffectiveMatrix::compute_for_pairs`]: multi-column
//!   batches through the flat-arena kernel, single-threaded. The
//!   fused/reference ratio isolates the fusion + arena win from
//!   parallelism.
//! * **parallel** — [`EffectiveMatrix::compute_for_pairs_parallel`] at
//!   increasing thread counts (persistent work-stealing pool).
//!
//! Methodology: every configuration gets warmup iterations (unmeasured;
//! they fault in pages, build the sweep context and spin up the pool's
//! parked workers) followed by `reps` measured repetitions, reported as
//! median plus min/max spread. `cores` in the report is
//! `std::thread::available_parallelism()` at run time, and every
//! parallel entry records the thread count it actually requested — on a
//! 1-core host the scaling rows hover near 1x by construction and the
//! report says so.
//!
//! Two further sections measure the sparsity-pruned sweep path:
//!
//! * **sparse** — for each label density in [`SPARSE_DENSITIES`], the
//!   pruned kernel ([`FusedSweep::compute_with`]) vs. the forced dense
//!   walk ([`FusedSweep::compute_dense_with`]) over the clustered
//!   [`ucra_workload::sparse::sparse_labels`] shape, single-threaded.
//!   `speedup_vs_dense_walk` is the headline sparsity number;
//!   `active_fraction` records the largest per-batch union label cone
//!   so a reader can see *why* the speedup is what it is.
//! * **dense_check** — the pruned-capable auto path vs. the forced
//!   dense walk on the *dense* stress shape, as a within-run ratio.
//!   Dense batches fail the pruning gate, so the ratio must sit near
//!   1.0; CI gates on it instead of on absolute nanoseconds, which do
//!   not transfer across machines.
//!
//! A **narrow_vs_wide** section measures the tiered count arena: the
//! default narrow `u64` lane sweep vs. the forced wide `u128`
//! `ModeCounts` sweep ([`FusedSweep::compute_wide_with`]) on the stress
//! shape, single-threaded, same pruning decisions. `speedup_vs_wide` is
//! the SoA-lane headline (CI gates `>= 1.3`), and `escalations` counts
//! auto batches that crossed the narrow saturation ceiling (CI gates
//! `== 0` — standard workloads never approach `u64` path counts).
//!
//! A **simd** section measures the runtime-dispatched kernel backend
//! (`ucra_core::engine::simd`): the dispatcher-selected backend vs. the
//! forced-scalar oracle running the same narrow sweep on the same
//! workload instance within the run, plus per-hot-loop microbenchmarks
//! (`add_lanes` / `or_reduce` / `expand_labels`). A `host` object
//! records target arch, detected features and the selected backend so a
//! reader knows which gate applies (`speedup_vs_narrow >= 1.05` under
//! AVX2 on the committed full-shape report, `>= 1.0` everywhere; the
//! AVX2 floor is calibrated to the recording host, where the ratio is
//! capped by arena memory bandwidth — see EXPERIMENTS.md, Ablation L).
//!
//! The run doubles as an equivalence smoke test: the fused and parallel
//! matrices are asserted sign-identical to the reference, and the pruned
//! sparse sweeps sign-identical to their dense walks, before any number
//! is reported. Results land in `BENCH_sweep.json` at the repo root (see
//! EXPERIMENTS.md for the recipe).

use crate::host::HostInfo;
use crate::timing::{fmt_ns, measure, measure_paired, median_pair_ratio, TimingStats};
use std::collections::BTreeMap;
use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::engine::kernel::DEFAULT_BATCH_COLUMNS;
use ucra_core::engine::simd::{active_backend, Backend, Kernels};
use ucra_core::{
    resolve_histogram, CoreError, Eacm, EffectiveMatrix, FusedSweep, ObjectId, RightId, Sign,
    Strategy, SweepContext, SweepScratch,
};
use ucra_workload::sparse::{sparse_labels, SparseConfig};
use ucra_workload::stress::{deep_wide, StressConfig, StressModel};

/// Unmeasured iterations before timing starts, for every configuration.
pub const WARMUP_ITERS: usize = 1;

/// Label densities the sparse section samples (fraction of subjects
/// carrying an explicit label per `(object, right)` pair).
pub const SPARSE_DENSITIES: [f64; 3] = [0.001, 0.01, 0.1];

/// One thread-scaling sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadSample {
    /// Worker count requested from the driver. The driver clamps to
    /// `available_parallelism` (see `compute_for_pairs_parallel`), so on
    /// a host with fewer cores the row measures the serial fallback —
    /// read it against the report's `cores` field.
    pub threads: usize,
    /// Median wall-clock nanoseconds over the measured repetitions.
    pub ns: u128,
    /// Fastest repetition.
    pub min_ns: u128,
    /// Slowest repetition.
    pub max_ns: u128,
    /// Speedup relative to the single-threaded fused run (medians).
    pub speedup_vs_fused: f64,
}

/// One sparse-density sample: the pruned sweep vs. the forced dense
/// walk over the same clustered low-density model, single-threaded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseSample {
    /// Fraction of subjects with an explicit label per pair.
    pub label_density: f64,
    /// Subjects in the sparse hierarchy.
    pub subjects: usize,
    /// `(object, right)` columns swept.
    pub pairs: usize,
    /// Largest per-batch union label cone as a fraction of the
    /// hierarchy (1.0 means some batch fell back to the dense walk).
    pub active_fraction: f64,
    /// Pruned kernel, [`FusedSweep::compute_with`].
    pub pruned: TimingStats,
    /// Forced dense walk, [`FusedSweep::compute_dense_with`].
    pub dense_walk: TimingStats,
    /// `dense_walk / pruned` medians — the sparsity win.
    pub speedup_vs_dense_walk: f64,
}

/// Within-run dense no-regression check: the pruned-capable auto path
/// vs. the forced dense walk on the dense stress shape. Dense batches
/// fail the pruning seed gate (their label seeds exceed a quarter of
/// the hierarchy), so `ratio` must sit near 1.0 — the pruning
/// machinery may not tax workloads it cannot help.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseCheck {
    /// Auto path ([`FusedSweep::compute_with`]) on the dense shape.
    pub auto: TimingStats,
    /// Forced dense walk on the same shape.
    pub forced_dense: TimingStats,
    /// `auto / forced_dense` medians; CI gates `ratio <= 1.10`.
    pub ratio: f64,
}

/// The tiered-arena comparison: the default narrow `u64` lane sweep vs.
/// the forced wide `u128` `ModeCounts` sweep on the same stress shape,
/// single-threaded, same pruning decisions (both entry points share the
/// gate), so the ratio isolates the count-lane representation alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NarrowVsWide {
    /// Default tiered path, [`FusedSweep::compute_with`] (narrow lanes).
    pub narrow: TimingStats,
    /// Forced wide tier, [`FusedSweep::compute_wide_with`].
    pub wide: TimingStats,
    /// `wide / narrow` medians — the SoA lane win; CI gates `>= 1.3`.
    pub speedup_vs_wide: f64,
    /// Batches the auto path escalated to the wide tier. Must be 0 on
    /// the standard workloads (CI gates it): escalation means the shape
    /// has path multiplicities near `2^63`, which no realistic
    /// hierarchy produces.
    pub escalations: u64,
}

/// One hot-loop microbenchmark: the selected SIMD backend vs. the
/// always-compiled scalar oracle on identical synthetic buffers sized
/// like the stress arena's working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopBench {
    /// Which kernel: `add_lanes`, `or_reduce` or `expand_labels`.
    pub name: &'static str,
    /// Selected backend ([`Kernels::active`]).
    pub simd: TimingStats,
    /// Forced scalar ([`Kernels::scalar`]).
    pub scalar: TimingStats,
    /// `scalar / simd` medians.
    pub speedup: f64,
}

/// The explicit-SIMD comparison: the dispatcher-selected backend vs. the
/// forced-scalar oracle running the *same* narrow-lane sweep on the same
/// workload instance within this run — same context, same scratch, same
/// pruning decisions — so the ratio isolates the kernel code generation
/// alone. Ratios are only meaningful within one run on one host; see the
/// report's `host` object for provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdSection {
    /// The backend the dispatcher selected for the `simd` timings.
    pub backend: &'static str,
    /// Narrow sweep pinned to the selected backend.
    pub simd: TimingStats,
    /// The same sweep pinned to the scalar oracle.
    pub scalar: TimingStats,
    /// Median of the per-rep `scalar / simd` paired ratios (the
    /// outlier-robust estimator; see `timing::median_pair_ratio`). CI
    /// gates `>= 1.0` everywhere and `>= 1.05` on the committed
    /// full-shape report when the host reports AVX2.
    pub speedup_vs_narrow: f64,
    /// Batches that escalated to the wide tier under the selected
    /// backend (must be 0 here, same gate as `narrow_vs_wide`).
    pub escalations: u64,
    /// Per-hot-loop microbenchmarks (Ablation L's breakdown rows).
    pub loops: Vec<LoopBench>,
}

/// The benchmark's result set.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// `true` when the CI-sized quick shape was used.
    pub quick: bool,
    /// Subjects in the stress hierarchy.
    pub subjects: usize,
    /// Membership edges in the stress hierarchy.
    pub edges: usize,
    /// `(object, right)` columns computed.
    pub pairs: usize,
    /// Warmup iterations run (unmeasured) before each configuration.
    pub warmup: usize,
    /// Measured repetitions per configuration (median-of-`reps`).
    pub reps: usize,
    /// Legacy per-pair BTreeMap sweep + resolve.
    pub reference: TimingStats,
    /// Single-threaded fused kernel.
    pub fused: TimingStats,
    /// `reference / fused` medians — the fusion + arena win alone.
    pub speedup: f64,
    /// `std::thread::available_parallelism()` when the benchmark ran
    /// (context for reading the scaling rows: on a 1-core host they
    /// hover near 1x).
    pub cores: usize,
    /// Thread-scaling samples of the parallel driver.
    pub parallel: Vec<ThreadSample>,
    /// Auto-vs-forced-dense ratio on the dense shape (regression gate).
    pub dense_check: DenseCheck,
    /// Narrow-lane vs. forced-wide tier comparison on the stress shape.
    pub narrow_vs_wide: NarrowVsWide,
    /// Selected-backend vs. forced-scalar comparison on the same
    /// workload instance as `narrow_vs_wide` (within-run only).
    pub simd: SimdSection,
    /// Pruned-vs-dense-walk samples per label density.
    pub sparse: Vec<SparseSample>,
    /// Hardware + dispatch provenance for the run.
    pub host: HostInfo,
}

impl SweepReport {
    /// The report as a JSON document (hand-rolled: the bench harness
    /// deliberately has no serde dependency). `ns` keys are medians;
    /// each configuration also reports its `min_ns`/`max_ns` spread.
    pub fn to_json(&self) -> String {
        let parallel = self
            .parallel
            .iter()
            .map(|s| {
                format!(
                    "    {{\"threads\": {}, \"ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                     \"speedup_vs_fused\": {:.3}}}",
                    s.threads, s.ns, s.min_ns, s.max_ns, s.speedup_vs_fused
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let sparse = self
            .sparse
            .iter()
            .map(|s| {
                format!(
                    "    {{\"label_density\": {}, \"subjects\": {}, \"pairs\": {}, \
                     \"active_fraction\": {:.4}, \
                     \"pruned_ns\": {}, \"pruned_min_ns\": {}, \"pruned_max_ns\": {}, \
                     \"dense_walk_ns\": {}, \"dense_walk_min_ns\": {}, \
                     \"dense_walk_max_ns\": {}, \"speedup_vs_dense_walk\": {:.3}}}",
                    s.label_density,
                    s.subjects,
                    s.pairs,
                    s.active_fraction,
                    s.pruned.median_ns,
                    s.pruned.min_ns,
                    s.pruned.max_ns,
                    s.dense_walk.median_ns,
                    s.dense_walk.min_ns,
                    s.dense_walk.max_ns,
                    s.speedup_vs_dense_walk
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let loops = self
            .simd
            .loops
            .iter()
            .map(|l| {
                format!(
                    "      {{\"name\": \"{}\", \"simd_ns\": {}, \"scalar_ns\": {}, \
                     \"speedup\": {:.3}}}",
                    l.name, l.simd.median_ns, l.scalar.median_ns, l.speedup
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"fused_sweep\",\n  \"quick\": {},\n  \"cores\": {},\n  \
             \"host\": {},\n  \
             \"warmup\": {},\n  \"reps\": {},\n  \
             \"workload\": {{\"subjects\": {}, \"edges\": {}, \"pairs\": {}}},\n  \
             \"single_thread\": {{\"reference_ns\": {}, \"reference_min_ns\": {}, \
             \"reference_max_ns\": {}, \"fused_ns\": {}, \"fused_min_ns\": {}, \
             \"fused_max_ns\": {}, \"speedup\": {:.3}}},\n  \
             \"parallel\": [\n{}\n  ],\n  \
             \"dense_check\": {{\"auto_ns\": {}, \"forced_dense_ns\": {}, \
             \"ratio\": {:.3}}},\n  \
             \"narrow_vs_wide\": {{\"narrow_ns\": {}, \"narrow_min_ns\": {}, \
             \"narrow_max_ns\": {}, \"wide_ns\": {}, \"wide_min_ns\": {}, \
             \"wide_max_ns\": {}, \"speedup_vs_wide\": {:.3}, \"escalations\": {}}},\n  \
             \"simd\": {{\"backend\": \"{}\", \"simd_ns\": {}, \"simd_min_ns\": {}, \
             \"simd_max_ns\": {}, \"scalar_ns\": {}, \"scalar_min_ns\": {}, \
             \"scalar_max_ns\": {}, \"speedup_vs_narrow\": {:.3}, \"escalations\": {}, \
             \"loops\": [\n{}\n    ]}},\n  \
             \"sparse\": [\n{}\n  ]\n}}\n",
            self.quick,
            self.cores,
            self.host.to_json(),
            self.warmup,
            self.reps,
            self.subjects,
            self.edges,
            self.pairs,
            self.reference.median_ns,
            self.reference.min_ns,
            self.reference.max_ns,
            self.fused.median_ns,
            self.fused.min_ns,
            self.fused.max_ns,
            self.speedup,
            parallel,
            self.dense_check.auto.median_ns,
            self.dense_check.forced_dense.median_ns,
            self.dense_check.ratio,
            self.narrow_vs_wide.narrow.median_ns,
            self.narrow_vs_wide.narrow.min_ns,
            self.narrow_vs_wide.narrow.max_ns,
            self.narrow_vs_wide.wide.median_ns,
            self.narrow_vs_wide.wide.min_ns,
            self.narrow_vs_wide.wide.max_ns,
            self.narrow_vs_wide.speedup_vs_wide,
            self.narrow_vs_wide.escalations,
            self.simd.backend,
            self.simd.simd.median_ns,
            self.simd.simd.min_ns,
            self.simd.simd.max_ns,
            self.simd.scalar.median_ns,
            self.simd.scalar.min_ns,
            self.simd.scalar.max_ns,
            self.simd.speedup_vs_narrow,
            self.simd.escalations,
            loops,
            sparse
        )
    }

    /// A terminal-friendly summary table.
    pub fn render(&self) -> String {
        let spread = |s: &TimingStats| format!("{}..{}", fmt_ns(s.min_ns), fmt_ns(s.max_ns));
        let mut out = format!("{}\n", self.host.render());
        out.push_str(&format!(
            "fused_sweep: {} subjects, {} edges, {} (object, right) columns\n\
             {} hw threads; median of {} reps after {} warmup\n\
             reference (BTreeMap sweep/pair): {}  [{}]\n\
             fused kernel  (1 thread)       : {}  [{}]  ({:.2}x)\n",
            self.subjects,
            self.edges,
            self.pairs,
            self.cores,
            self.reps,
            self.warmup,
            fmt_ns(self.reference.median_ns),
            spread(&self.reference),
            fmt_ns(self.fused.median_ns),
            spread(&self.fused),
            self.speedup
        ));
        for s in &self.parallel {
            out.push_str(&format!(
                "fused kernel ({:2} threads)      : {}  [{}..{}]  ({:.2}x vs 1-thread fused)\n",
                s.threads,
                fmt_ns(s.ns),
                fmt_ns(s.min_ns),
                fmt_ns(s.max_ns),
                s.speedup_vs_fused
            ));
        }
        out.push_str(&format!(
            "dense check (auto vs forced dense walk): {} vs {}  (ratio {:.2}, gate <= 1.10)\n",
            fmt_ns(self.dense_check.auto.median_ns),
            fmt_ns(self.dense_check.forced_dense.median_ns),
            self.dense_check.ratio
        ));
        out.push_str(&format!(
            "narrow u64 lanes vs forced wide u128   : {} vs {}  \
             ({:.2}x, gate >= 1.3, {} escalations)\n",
            fmt_ns(self.narrow_vs_wide.narrow.median_ns),
            fmt_ns(self.narrow_vs_wide.wide.median_ns),
            self.narrow_vs_wide.speedup_vs_wide,
            self.narrow_vs_wide.escalations
        ));
        out.push_str(&format!(
            "simd {} vs forced scalar sweep         : {} vs {}  \
             ({:.2}x, gate >= 1.0, {} escalations)\n",
            self.simd.backend,
            fmt_ns(self.simd.simd.median_ns),
            fmt_ns(self.simd.scalar.median_ns),
            self.simd.speedup_vs_narrow,
            self.simd.escalations
        ));
        for l in &self.simd.loops {
            out.push_str(&format!(
                "  loop {:13}: {} {} vs scalar {}  ({:.2}x)\n",
                l.name,
                self.simd.backend,
                fmt_ns(l.simd.median_ns),
                fmt_ns(l.scalar.median_ns),
                l.speedup
            ));
        }
        for s in &self.sparse {
            out.push_str(&format!(
                "sparse {:>5.2}% density: pruned {} vs dense walk {}  \
                 ({:.2}x, active {:.1}% of {} subjects)\n",
                s.label_density * 100.0,
                fmt_ns(s.pruned.median_ns),
                fmt_ns(s.dense_walk.median_ns),
                s.speedup_vs_dense_walk,
                s.active_fraction * 100.0,
                s.subjects
            ));
        }
        out
    }
}

/// The exact shape the pre-kernel `EffectiveMatrix::compute_for_pairs`
/// produced: one legacy sweep per pair, one resolve per row.
fn reference_matrix(
    model: &StressModel,
    strategy: Strategy,
) -> Result<BTreeMap<(ObjectId, RightId), Vec<Sign>>, CoreError> {
    let mut signs = BTreeMap::new();
    for &(o, r) in &model.pairs {
        let table = counting::histograms_all_reference(
            &model.hierarchy,
            &model.eacm,
            o,
            r,
            PropagationMode::Both,
        )?;
        let column = table
            .iter()
            .map(|h| Ok(resolve_histogram(h, strategy)?.sign))
            .collect::<Result<Vec<Sign>, CoreError>>()?;
        signs.insert((o, r), column);
    }
    Ok(signs)
}

/// Which kernel entry point [`sweep_batches`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepPath {
    /// The default tiered path: pruning gate + narrow `u64` lanes.
    Auto,
    /// Pruning disabled ([`FusedSweep::compute_dense_with`]).
    DenseWalk,
    /// Narrow tier disabled ([`FusedSweep::compute_wide_with`]).
    ForcedWide,
    /// The auto path with the kernel backend pinned for this call
    /// ([`FusedSweep::compute_with_backend`]) — the SIMD section's
    /// within-run comparator. Requests above the host's support level
    /// clamp down, so `Pinned(Scalar)` is the only portable pin.
    Pinned(Backend),
}

/// Sweeps `pairs` in kernel-width batches over a shared context,
/// single-threaded — the loop every forced-path timing shares. Returns
/// the largest per-batch active set (`subjects` when any batch ran the
/// dense walk) — the numerator of the report's `active_fraction` — and
/// the number of batches that escalated to the wide tier.
fn sweep_batches(
    ctx: &SweepContext,
    eacm: &Eacm,
    pairs: &[(ObjectId, RightId)],
    scratch: &mut SweepScratch,
    path: SweepPath,
) -> Result<(usize, u64), CoreError> {
    let mut max_active = 0usize;
    let mut escalations = 0u64;
    for batch in pairs.chunks(DEFAULT_BATCH_COLUMNS) {
        let fused = match path {
            SweepPath::Auto => {
                FusedSweep::compute_with(ctx, eacm, batch, PropagationMode::Both, scratch)?
            }
            SweepPath::DenseWalk => {
                FusedSweep::compute_dense_with(ctx, eacm, batch, PropagationMode::Both, scratch)?
            }
            SweepPath::ForcedWide => {
                FusedSweep::compute_wide_with(ctx, eacm, batch, PropagationMode::Both, scratch)?
            }
            SweepPath::Pinned(backend) => FusedSweep::compute_with_backend(
                ctx,
                eacm,
                batch,
                PropagationMode::Both,
                scratch,
                backend,
            )?,
        };
        max_active = max_active.max(fused.active_subjects().unwrap_or(ctx.subjects()));
        escalations += u64::from(fused.escalated());
        fused.recycle(scratch);
    }
    Ok((max_active, escalations))
}

/// Measures the sparse section: per density, pruned vs. forced-dense
/// sweeps of the clustered [`sparse_labels`] shape, equivalence-gated.
fn run_sparse(
    quick: bool,
    reps: usize,
    strategy: Strategy,
) -> Result<Vec<SparseSample>, CoreError> {
    let mut samples = Vec::new();
    for &density in &SPARSE_DENSITIES {
        let config = if quick {
            SparseConfig::quick(density)
        } else {
            SparseConfig::full(density)
        };
        let model = sparse_labels(config, &mut ucra_workload::rng(1007));
        let ctx = SweepContext::new(&model.hierarchy);
        // Equivalence gate: the pruned sweep must be sign-identical to
        // the dense walk on every column before its time is reported.
        let mut scratch = SweepScratch::new();
        for batch in model.pairs.chunks(DEFAULT_BATCH_COLUMNS) {
            let pruned = FusedSweep::compute_with(
                &ctx,
                &model.eacm,
                batch,
                PropagationMode::Both,
                &mut scratch,
            )?;
            let dense = FusedSweep::compute_dense_with(
                &ctx,
                &model.eacm,
                batch,
                PropagationMode::Both,
                &mut scratch,
            )?;
            for c in 0..batch.len() {
                assert_eq!(
                    pruned.signs(c, strategy)?,
                    dense.signs(c, strategy)?,
                    "pruned sweep diverged from the dense walk at density {density}, column {c}"
                );
            }
            dense.recycle(&mut scratch);
        }
        let (pruned_stats, out) = measure(WARMUP_ITERS, reps, || {
            sweep_batches(
                &ctx,
                &model.eacm,
                &model.pairs,
                &mut scratch,
                SweepPath::Auto,
            )
        });
        let (max_active, _) = out?;
        let (dense_stats, out) = measure(WARMUP_ITERS, reps, || {
            sweep_batches(
                &ctx,
                &model.eacm,
                &model.pairs,
                &mut scratch,
                SweepPath::DenseWalk,
            )
        });
        out?;
        samples.push(SparseSample {
            label_density: density,
            subjects: model.hierarchy.subject_count(),
            pairs: model.pairs.len(),
            active_fraction: max_active as f64 / model.hierarchy.subject_count().max(1) as f64,
            pruned: pruned_stats,
            dense_walk: dense_stats,
            speedup_vs_dense_walk: dense_stats.median_ns as f64 / pruned_stats.median_ns as f64,
        });
    }
    Ok(samples)
}

/// Number of `u64` cells per synthetic lane in the per-loop
/// microbenchmarks: 16 Ki cells = 128 KiB per lane, on the order of one
/// batch's three count planes for the full stress shape, so the numbers
/// reflect the cache level the real sweep works in.
const LOOP_BENCH_CELLS: usize = 1 << 14;

/// Inner repetitions per measured closure in the per-loop
/// microbenchmarks, lifting each sample well above timer granularity.
const LOOP_BENCH_INNER: usize = 16;

/// Times each SIMD hot loop in isolation — the dispatcher-selected
/// backend vs. the scalar oracle on identical deterministic buffers.
fn loop_microbenches(reps: usize) -> Vec<LoopBench> {
    let simd = Kernels::active();
    let scalar = Kernels::scalar();
    let src: Vec<u64> = (0..LOOP_BENCH_CELLS as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut dst = vec![0u64; LOOP_BENCH_CELLS];
    let mut time_kernel = |k: Kernels, name: &'static str| -> TimingStats {
        match name {
            "add_lanes" => {
                dst.fill(1);
                let (stats, ()) = measure(WARMUP_ITERS, reps, || {
                    for _ in 0..LOOP_BENCH_INNER {
                        k.add_lanes(&mut dst, &src);
                    }
                });
                stats
            }
            "or_reduce" => {
                let (stats, acc) = measure(WARMUP_ITERS, reps, || {
                    let mut acc = 0u64;
                    for _ in 0..LOOP_BENCH_INNER {
                        acc |= k.or_reduce(&src);
                    }
                    acc
                });
                assert_eq!(acc, Kernels::scalar().or_reduce(&src));
                stats
            }
            _ => {
                let words = &src[..LOOP_BENCH_CELLS / 8];
                let mut out = vec![0u8; words.len() * 32];
                let (stats, ()) = measure(WARMUP_ITERS, reps, || {
                    for _ in 0..LOOP_BENCH_INNER {
                        k.expand_labels(words, &mut out);
                    }
                });
                stats
            }
        }
    };
    ["add_lanes", "or_reduce", "expand_labels"]
        .into_iter()
        .map(|name| {
            let simd_stats = time_kernel(simd, name);
            let scalar_stats = time_kernel(scalar, name);
            LoopBench {
                name,
                simd: simd_stats,
                scalar: scalar_stats,
                speedup: scalar_stats.median_ns as f64 / simd_stats.median_ns as f64,
            }
        })
        .collect()
}

/// Runs the benchmark with the default thread ladder: 2 and 4 always
/// (even on a single hardware core the work-stealing driver must stay
/// correct and near-1x), 8 only when the host can actually run them.
pub fn run(quick: bool) -> Result<SweepReport, CoreError> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut ladder = vec![2usize, 4];
    if cores >= 8 {
        ladder.push(8);
    }
    run_with_threads(quick, &ladder)
}

/// Runs the benchmark sampling the parallel driver at exactly the given
/// thread counts (`ucra bench --threads 1,2,4` lands here). `quick`
/// selects the CI-sized shape; the full shape takes on the order of a
/// minute.
pub fn run_with_threads(quick: bool, thread_counts: &[usize]) -> Result<SweepReport, CoreError> {
    let config = if quick {
        StressConfig::quick()
    } else {
        StressConfig::full()
    };
    let model = deep_wide(config, &mut ucra_workload::rng(42));
    let strategy: Strategy = "D-LP-".parse().expect("legitimate mnemonic");
    let reps = if quick { 3 } else { 5 };

    let (reference_stats, reference) = {
        let (stats, out) = measure(WARMUP_ITERS, reps, || reference_matrix(&model, strategy));
        (stats, out?)
    };
    let (fused_stats, fused) = {
        let (stats, out) = measure(WARMUP_ITERS, reps, || {
            EffectiveMatrix::compute_for_pairs(
                &model.hierarchy,
                &model.eacm,
                strategy,
                &model.pairs,
            )
        });
        (stats, out?)
    };
    // Equivalence gate: a fast wrong kernel reports nothing.
    for (&(o, r), column) in &reference {
        for (i, &sign) in column.iter().enumerate() {
            let s = ucra_core::SubjectId::from_index(i);
            assert_eq!(
                fused.sign(s, o, r),
                Some(sign),
                "fused kernel diverged from the reference sweep at ({s}, {o}, {r})"
            );
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut parallel = Vec::new();
    for &threads in thread_counts {
        let threads = threads.max(1);
        let (stats, out) = measure(WARMUP_ITERS, reps, || {
            EffectiveMatrix::compute_for_pairs_parallel(
                &model.hierarchy,
                &model.eacm,
                strategy,
                &model.pairs,
                threads,
            )
        });
        let out = out?;
        assert_eq!(out, fused, "parallel driver diverged at {threads} threads");
        parallel.push(ThreadSample {
            threads,
            ns: stats.median_ns,
            min_ns: stats.min_ns,
            max_ns: stats.max_ns,
            speedup_vs_fused: fused_stats.median_ns as f64 / stats.median_ns as f64,
        });
    }

    // Within-run dense no-regression: the pruned-capable auto path vs.
    // the forced dense walk on the dense shape, same context.
    let ctx = SweepContext::new(&model.hierarchy);
    let mut scratch = SweepScratch::new();
    let dense_check = {
        let (auto, out) = measure(WARMUP_ITERS, reps, || {
            sweep_batches(
                &ctx,
                &model.eacm,
                &model.pairs,
                &mut scratch,
                SweepPath::Auto,
            )
        });
        out?;
        let (forced, out) = measure(WARMUP_ITERS, reps, || {
            sweep_batches(
                &ctx,
                &model.eacm,
                &model.pairs,
                &mut scratch,
                SweepPath::DenseWalk,
            )
        });
        out?;
        DenseCheck {
            auto,
            forced_dense: forced,
            ratio: auto.median_ns as f64 / forced.median_ns as f64,
        }
    };

    // The tiered-arena headline: default narrow u64 lanes vs. the forced
    // wide u128 tier on the same shape, same context, same pruning
    // decisions — the ratio isolates the count-lane layout. The auto
    // runs also report how many batches escalated (must be 0 here).
    let narrow_vs_wide = {
        let (narrow, out) = measure(WARMUP_ITERS, reps, || {
            sweep_batches(
                &ctx,
                &model.eacm,
                &model.pairs,
                &mut scratch,
                SweepPath::Auto,
            )
        });
        let (_, escalations) = out?;
        let (wide, out) = measure(WARMUP_ITERS, reps, || {
            sweep_batches(
                &ctx,
                &model.eacm,
                &model.pairs,
                &mut scratch,
                SweepPath::ForcedWide,
            )
        });
        out?;
        NarrowVsWide {
            narrow,
            wide,
            speedup_vs_wide: wide.median_ns as f64 / narrow.median_ns as f64,
            escalations,
        }
    };

    // The SIMD headline: the dispatcher-selected backend vs. the forced
    // scalar oracle, same narrow sweep, same workload instance, same
    // context — the ratio isolates explicit vectorization over whatever
    // the compiler auto-vectorized for the scalar loops. Measured
    // within this run only; cross-report comparisons are meaningless.
    let backend = active_backend();
    let simd = {
        // Interleaved A/B reps (not two sequential measure blocks): the
        // host's frequency drift between blocks can exceed the few-percent
        // effect this ratio gates on, and pairing makes both sides sample
        // the same drift. The scalar side gets its own scratch so the two
        // closures can live simultaneously.
        let mut scalar_scratch = SweepScratch::new();
        // Extra reps relative to the other sections: this ratio gates CI
        // on a ~10% margin, so its median needs to be tighter than the
        // 2-3x headline numbers can get away with.
        let ((simd_stats, out_simd), (scalar_stats, out_scalar), rep_pairs) = measure_paired(
            WARMUP_ITERS,
            2 * reps + 1,
            || {
                sweep_batches(
                    &ctx,
                    &model.eacm,
                    &model.pairs,
                    &mut scratch,
                    SweepPath::Pinned(backend),
                )
            },
            || {
                sweep_batches(
                    &ctx,
                    &model.eacm,
                    &model.pairs,
                    &mut scalar_scratch,
                    SweepPath::Pinned(Backend::Scalar),
                )
            },
        );
        let (_, escalations) = out_simd?;
        out_scalar?;
        SimdSection {
            backend: backend.as_str(),
            simd: simd_stats,
            scalar: scalar_stats,
            // Median of per-rep ratios, not ratio of medians: robust
            // to interference bursts on a shared host (see
            // `median_pair_ratio`).
            speedup_vs_narrow: median_pair_ratio(&rep_pairs),
            escalations,
            loops: loop_microbenches(reps),
        }
    };

    let sparse = run_sparse(quick, reps, strategy)?;

    Ok(SweepReport {
        quick,
        subjects: model.hierarchy.subject_count(),
        edges: model.hierarchy.membership_count(),
        pairs: model.pairs.len(),
        warmup: WARMUP_ITERS,
        reps,
        reference: reference_stats,
        fused: fused_stats,
        speedup: reference_stats.median_ns as f64 / fused_stats.median_ns as f64,
        cores,
        parallel,
        dense_check,
        narrow_vs_wide,
        simd,
        sparse,
        host: HostInfo::capture(),
    })
}

/// Writes the report to `BENCH_sweep.json` at the repository root and
/// returns the path written.
pub fn write_report(report: &SweepReport) -> std::io::Result<String> {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap_or(manifest);
    let path = root.join("BENCH_sweep.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_consistent_numbers() {
        let report = run_with_threads(true, &[1, 2]).unwrap();
        assert!(report.quick);
        assert_eq!(report.pairs, StressConfig::quick().pairs);
        assert!(report.reference.median_ns > 0 && report.fused.median_ns > 0);
        assert!(report.reference.min_ns <= report.reference.median_ns);
        assert!(report.fused.median_ns <= report.fused.max_ns);
        assert!(
            (report.speedup - report.reference.median_ns as f64 / report.fused.median_ns as f64)
                .abs()
                < 1e-9
        );
        assert_eq!(report.warmup, WARMUP_ITERS);
        let threads: Vec<usize> = report.parallel.iter().map(|s| s.threads).collect();
        assert_eq!(threads, vec![1, 2], "per-entry thread counts preserved");
        for s in &report.parallel {
            assert!(s.min_ns <= s.ns && s.ns <= s.max_ns);
        }
        assert!(report.dense_check.ratio > 0.0);
        assert!(
            report.dense_check.auto.median_ns > 0 && report.dense_check.forced_dense.median_ns > 0
        );
        assert!(report.narrow_vs_wide.speedup_vs_wide > 0.0);
        assert!(
            report.narrow_vs_wide.narrow.median_ns > 0 && report.narrow_vs_wide.wide.median_ns > 0
        );
        assert_eq!(
            report.narrow_vs_wide.escalations, 0,
            "the stress shape must never escalate to the wide tier"
        );
        assert_eq!(report.simd.backend, active_backend().as_str());
        assert!(report.simd.simd.median_ns > 0 && report.simd.scalar.median_ns > 0);
        assert!(report.simd.speedup_vs_narrow > 0.0);
        assert_eq!(
            report.simd.escalations, 0,
            "pinned-backend sweeps must not change tier decisions"
        );
        let loop_names: Vec<&str> = report.simd.loops.iter().map(|l| l.name).collect();
        assert_eq!(loop_names, vec!["add_lanes", "or_reduce", "expand_labels"]);
        for l in &report.simd.loops {
            assert!(l.simd.median_ns > 0 && l.scalar.median_ns > 0 && l.speedup > 0.0);
        }
        assert_eq!(report.host.kernel_backend, report.simd.backend);
        assert_eq!(report.sparse.len(), SPARSE_DENSITIES.len());
        for (s, &d) in report.sparse.iter().zip(SPARSE_DENSITIES.iter()) {
            assert_eq!(s.label_density, d);
            assert!(s.pruned.median_ns > 0 && s.dense_walk.median_ns > 0);
            assert!(s.speedup_vs_dense_walk > 0.0);
            assert!(s.active_fraction > 0.0 && s.active_fraction <= 1.0);
        }
        // The whole point: at 1 % density the pruned sweep's batch cones
        // are cluster-local, so it must clearly beat the dense walk.
        let one_percent = &report.sparse[1];
        assert!(
            one_percent.active_fraction < 0.5,
            "1 % density batches should prune (active fraction {})",
            one_percent.active_fraction
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"fused_sweep\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"warmup\""));
        assert!(json.contains("\"min_ns\""));
        assert!(json.contains("\"dense_check\""));
        assert!(json.contains("\"narrow_vs_wide\""));
        assert!(json.contains("\"speedup_vs_wide\""));
        assert!(json.contains("\"escalations\": 0"));
        assert!(json.contains("\"host\""));
        assert!(json.contains("\"kernel_backend\""));
        assert!(json.contains("\"simd\""));
        assert!(json.contains("\"speedup_vs_narrow\""));
        assert!(json.contains("\"name\": \"expand_labels\""));
        assert!(json.contains("\"speedup_vs_dense_walk\""));
        assert!(json.contains("\"active_fraction\""));
        // Well-formed enough for the CI validator: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
