//! The `fused_sweep` benchmark: columnar fused-sweep kernel vs. the
//! legacy BTreeMap-per-node sweep, plus thread scaling of the
//! work-stealing parallel driver.
//!
//! Three timings over the same deep-and-wide stress model
//! ([`ucra_workload::stress::deep_wide`]) and the same strategy:
//!
//! * **reference** — the pre-kernel `compute_for_pairs` path: one
//!   [`histograms_all_reference`](ucra_core::engine::counting::histograms_all_reference)
//!   sweep per pair (a `BTreeMap` histogram per node), then
//!   `resolve_histogram` per row.
//! * **fused** — [`EffectiveMatrix::compute_for_pairs`]: multi-column
//!   batches through the flat-arena kernel, single-threaded. The
//!   fused/reference ratio isolates the fusion + arena win from
//!   parallelism.
//! * **parallel** — [`EffectiveMatrix::compute_for_pairs_parallel`] at
//!   increasing thread counts (work-stealing pool).
//!
//! The run doubles as an equivalence smoke test: the fused and parallel
//! matrices are asserted sign-identical to the reference before any
//! number is reported. Results land in `BENCH_sweep.json` at the repo
//! root (see EXPERIMENTS.md for the recipe).

use crate::timing::{fmt_ns, median_ns};
use std::collections::BTreeMap;
use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::{resolve_histogram, CoreError, EffectiveMatrix, ObjectId, RightId, Sign, Strategy};
use ucra_workload::stress::{deep_wide, StressConfig, StressModel};

/// One thread-scaling sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadSample {
    /// Worker count passed to the pool.
    pub threads: usize,
    /// Median wall-clock nanoseconds.
    pub ns: u128,
    /// Speedup relative to the single-threaded fused run.
    pub speedup_vs_fused: f64,
}

/// The benchmark's result set.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// `true` when the CI-sized quick shape was used.
    pub quick: bool,
    /// Subjects in the stress hierarchy.
    pub subjects: usize,
    /// Membership edges in the stress hierarchy.
    pub edges: usize,
    /// `(object, right)` columns computed.
    pub pairs: usize,
    /// Median ns of the legacy per-pair BTreeMap sweep + resolve.
    pub reference_ns: u128,
    /// Median ns of the single-threaded fused kernel.
    pub fused_ns: u128,
    /// `reference_ns / fused_ns` — the fusion + arena win alone.
    pub speedup: f64,
    /// Hardware threads available when the benchmark ran (context for
    /// reading the scaling rows: on a 1-core host they hover near 1x).
    pub cores: usize,
    /// Thread-scaling samples of the parallel driver.
    pub parallel: Vec<ThreadSample>,
}

impl SweepReport {
    /// The report as a JSON document (hand-rolled: the bench harness
    /// deliberately has no serde dependency).
    pub fn to_json(&self) -> String {
        let parallel = self
            .parallel
            .iter()
            .map(|s| {
                format!(
                    "    {{\"threads\": {}, \"ns\": {}, \"speedup_vs_fused\": {:.3}}}",
                    s.threads, s.ns, s.speedup_vs_fused
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"fused_sweep\",\n  \"quick\": {},\n  \"cores\": {},\n  \
             \"workload\": {{\"subjects\": {}, \"edges\": {}, \"pairs\": {}}},\n  \
             \"single_thread\": {{\"reference_ns\": {}, \"fused_ns\": {}, \"speedup\": {:.3}}},\n  \
             \"parallel\": [\n{}\n  ]\n}}\n",
            self.quick,
            self.cores,
            self.subjects,
            self.edges,
            self.pairs,
            self.reference_ns,
            self.fused_ns,
            self.speedup,
            parallel
        )
    }

    /// A terminal-friendly summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fused_sweep: {} subjects, {} edges, {} (object, right) columns ({} hw threads)\n\
             reference (BTreeMap sweep/pair): {}\n\
             fused kernel  (1 thread)       : {}  ({:.2}x)\n",
            self.subjects,
            self.edges,
            self.pairs,
            self.cores,
            fmt_ns(self.reference_ns),
            fmt_ns(self.fused_ns),
            self.speedup
        );
        for s in &self.parallel {
            out.push_str(&format!(
                "fused kernel ({:2} threads)      : {}  ({:.2}x vs 1-thread fused)\n",
                s.threads,
                fmt_ns(s.ns),
                s.speedup_vs_fused
            ));
        }
        out
    }
}

/// The exact shape the pre-kernel `EffectiveMatrix::compute_for_pairs`
/// produced: one legacy sweep per pair, one resolve per row.
fn reference_matrix(
    model: &StressModel,
    strategy: Strategy,
) -> Result<BTreeMap<(ObjectId, RightId), Vec<Sign>>, CoreError> {
    let mut signs = BTreeMap::new();
    for &(o, r) in &model.pairs {
        let table = counting::histograms_all_reference(
            &model.hierarchy,
            &model.eacm,
            o,
            r,
            PropagationMode::Both,
        )?;
        let column = table
            .iter()
            .map(|h| Ok(resolve_histogram(h, strategy)?.sign))
            .collect::<Result<Vec<Sign>, CoreError>>()?;
        signs.insert((o, r), column);
    }
    Ok(signs)
}

/// Runs the benchmark. `quick` selects the CI-sized shape; the full
/// shape takes on the order of a minute.
pub fn run(quick: bool) -> Result<SweepReport, CoreError> {
    let config = if quick {
        StressConfig::quick()
    } else {
        StressConfig::full()
    };
    let model = deep_wide(config, &mut ucra_workload::rng(42));
    let strategy: Strategy = "D-LP-".parse().expect("legitimate mnemonic");
    let reps = if quick { 3 } else { 5 };

    let (reference_ns, reference) = {
        let (ns, out) = median_ns(reps, || reference_matrix(&model, strategy));
        (ns, out?)
    };
    let (fused_ns, fused) = {
        let (ns, out) = median_ns(reps, || {
            EffectiveMatrix::compute_for_pairs(
                &model.hierarchy,
                &model.eacm,
                strategy,
                &model.pairs,
            )
        });
        (ns, out?)
    };
    // Equivalence gate: a fast wrong kernel reports nothing.
    for (&(o, r), column) in &reference {
        for (i, &sign) in column.iter().enumerate() {
            let s = ucra_core::SubjectId::from_index(i);
            assert_eq!(
                fused.sign(s, o, r),
                Some(sign),
                "fused kernel diverged from the reference sweep at ({s}, {o}, {r})"
            );
        }
    }

    // Always sample threads 2 and 4 — even on a single hardware core the
    // work-stealing driver must stay correct and near-1x, and on real
    // multi-core hosts these rows are the scaling curve. 8 workers are
    // only worth measuring when the host can actually run them.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut parallel = Vec::new();
    for threads in [2usize, 4, 8] {
        if threads == 8 && cores < 8 {
            break;
        }
        let (ns, out) = median_ns(reps, || {
            EffectiveMatrix::compute_for_pairs_parallel(
                &model.hierarchy,
                &model.eacm,
                strategy,
                &model.pairs,
                threads,
            )
        });
        let out = out?;
        assert_eq!(out, fused, "parallel driver diverged at {threads} threads");
        parallel.push(ThreadSample {
            threads,
            ns,
            speedup_vs_fused: fused_ns as f64 / ns as f64,
        });
    }

    Ok(SweepReport {
        quick,
        subjects: model.hierarchy.subject_count(),
        edges: model.hierarchy.membership_count(),
        pairs: model.pairs.len(),
        reference_ns,
        fused_ns,
        speedup: reference_ns as f64 / fused_ns as f64,
        cores,
        parallel,
    })
}

/// Writes the report to `BENCH_sweep.json` at the repository root and
/// returns the path written.
pub fn write_report(report: &SweepReport) -> std::io::Result<String> {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap_or(manifest);
    let path = root.join("BENCH_sweep.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_consistent_numbers() {
        let report = run(true).unwrap();
        assert!(report.quick);
        assert_eq!(report.pairs, StressConfig::quick().pairs);
        assert!(report.reference_ns > 0 && report.fused_ns > 0);
        assert!(
            (report.speedup - report.reference_ns as f64 / report.fused_ns as f64).abs() < 1e-9
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"fused_sweep\""));
        assert!(json.contains("\"speedup\""));
        // Well-formed enough for the CI validator: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
