//! The `fused_sweep` benchmark: columnar fused-sweep kernel vs. the
//! legacy BTreeMap-per-node sweep, plus thread scaling of the
//! work-stealing parallel driver over a shared [`ucra_core::SweepContext`].
//!
//! Three timings over the same deep-and-wide stress model
//! ([`ucra_workload::stress::deep_wide`]) and the same strategy:
//!
//! * **reference** — the pre-kernel `compute_for_pairs` path: one
//!   [`histograms_all_reference`](ucra_core::engine::counting::histograms_all_reference)
//!   sweep per pair (a `BTreeMap` histogram per node), then
//!   `resolve_histogram` per row.
//! * **fused** — [`EffectiveMatrix::compute_for_pairs`]: multi-column
//!   batches through the flat-arena kernel, single-threaded. The
//!   fused/reference ratio isolates the fusion + arena win from
//!   parallelism.
//! * **parallel** — [`EffectiveMatrix::compute_for_pairs_parallel`] at
//!   increasing thread counts (persistent work-stealing pool).
//!
//! Methodology: every configuration gets warmup iterations (unmeasured;
//! they fault in pages, build the sweep context and spin up the pool's
//! parked workers) followed by `reps` measured repetitions, reported as
//! median plus min/max spread. `cores` in the report is
//! `std::thread::available_parallelism()` at run time, and every
//! parallel entry records the thread count it actually requested — on a
//! 1-core host the scaling rows hover near 1x by construction and the
//! report says so.
//!
//! The run doubles as an equivalence smoke test: the fused and parallel
//! matrices are asserted sign-identical to the reference before any
//! number is reported. Results land in `BENCH_sweep.json` at the repo
//! root (see EXPERIMENTS.md for the recipe).

use crate::timing::{fmt_ns, measure, TimingStats};
use std::collections::BTreeMap;
use ucra_core::engine::counting::{self, PropagationMode};
use ucra_core::{resolve_histogram, CoreError, EffectiveMatrix, ObjectId, RightId, Sign, Strategy};
use ucra_workload::stress::{deep_wide, StressConfig, StressModel};

/// Unmeasured iterations before timing starts, for every configuration.
pub const WARMUP_ITERS: usize = 1;

/// One thread-scaling sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadSample {
    /// Worker count requested from the driver. The driver clamps to
    /// `available_parallelism` (see `compute_for_pairs_parallel`), so on
    /// a host with fewer cores the row measures the serial fallback —
    /// read it against the report's `cores` field.
    pub threads: usize,
    /// Median wall-clock nanoseconds over the measured repetitions.
    pub ns: u128,
    /// Fastest repetition.
    pub min_ns: u128,
    /// Slowest repetition.
    pub max_ns: u128,
    /// Speedup relative to the single-threaded fused run (medians).
    pub speedup_vs_fused: f64,
}

/// The benchmark's result set.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// `true` when the CI-sized quick shape was used.
    pub quick: bool,
    /// Subjects in the stress hierarchy.
    pub subjects: usize,
    /// Membership edges in the stress hierarchy.
    pub edges: usize,
    /// `(object, right)` columns computed.
    pub pairs: usize,
    /// Warmup iterations run (unmeasured) before each configuration.
    pub warmup: usize,
    /// Measured repetitions per configuration (median-of-`reps`).
    pub reps: usize,
    /// Legacy per-pair BTreeMap sweep + resolve.
    pub reference: TimingStats,
    /// Single-threaded fused kernel.
    pub fused: TimingStats,
    /// `reference / fused` medians — the fusion + arena win alone.
    pub speedup: f64,
    /// `std::thread::available_parallelism()` when the benchmark ran
    /// (context for reading the scaling rows: on a 1-core host they
    /// hover near 1x).
    pub cores: usize,
    /// Thread-scaling samples of the parallel driver.
    pub parallel: Vec<ThreadSample>,
}

impl SweepReport {
    /// The report as a JSON document (hand-rolled: the bench harness
    /// deliberately has no serde dependency). `ns` keys are medians;
    /// each configuration also reports its `min_ns`/`max_ns` spread.
    pub fn to_json(&self) -> String {
        let parallel = self
            .parallel
            .iter()
            .map(|s| {
                format!(
                    "    {{\"threads\": {}, \"ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                     \"speedup_vs_fused\": {:.3}}}",
                    s.threads, s.ns, s.min_ns, s.max_ns, s.speedup_vs_fused
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"fused_sweep\",\n  \"quick\": {},\n  \"cores\": {},\n  \
             \"warmup\": {},\n  \"reps\": {},\n  \
             \"workload\": {{\"subjects\": {}, \"edges\": {}, \"pairs\": {}}},\n  \
             \"single_thread\": {{\"reference_ns\": {}, \"reference_min_ns\": {}, \
             \"reference_max_ns\": {}, \"fused_ns\": {}, \"fused_min_ns\": {}, \
             \"fused_max_ns\": {}, \"speedup\": {:.3}}},\n  \
             \"parallel\": [\n{}\n  ]\n}}\n",
            self.quick,
            self.cores,
            self.warmup,
            self.reps,
            self.subjects,
            self.edges,
            self.pairs,
            self.reference.median_ns,
            self.reference.min_ns,
            self.reference.max_ns,
            self.fused.median_ns,
            self.fused.min_ns,
            self.fused.max_ns,
            self.speedup,
            parallel
        )
    }

    /// A terminal-friendly summary table.
    pub fn render(&self) -> String {
        let spread = |s: &TimingStats| format!("{}..{}", fmt_ns(s.min_ns), fmt_ns(s.max_ns));
        let mut out = format!(
            "fused_sweep: {} subjects, {} edges, {} (object, right) columns\n\
             {} hw threads; median of {} reps after {} warmup\n\
             reference (BTreeMap sweep/pair): {}  [{}]\n\
             fused kernel  (1 thread)       : {}  [{}]  ({:.2}x)\n",
            self.subjects,
            self.edges,
            self.pairs,
            self.cores,
            self.reps,
            self.warmup,
            fmt_ns(self.reference.median_ns),
            spread(&self.reference),
            fmt_ns(self.fused.median_ns),
            spread(&self.fused),
            self.speedup
        );
        for s in &self.parallel {
            out.push_str(&format!(
                "fused kernel ({:2} threads)      : {}  [{}..{}]  ({:.2}x vs 1-thread fused)\n",
                s.threads,
                fmt_ns(s.ns),
                fmt_ns(s.min_ns),
                fmt_ns(s.max_ns),
                s.speedup_vs_fused
            ));
        }
        out
    }
}

/// The exact shape the pre-kernel `EffectiveMatrix::compute_for_pairs`
/// produced: one legacy sweep per pair, one resolve per row.
fn reference_matrix(
    model: &StressModel,
    strategy: Strategy,
) -> Result<BTreeMap<(ObjectId, RightId), Vec<Sign>>, CoreError> {
    let mut signs = BTreeMap::new();
    for &(o, r) in &model.pairs {
        let table = counting::histograms_all_reference(
            &model.hierarchy,
            &model.eacm,
            o,
            r,
            PropagationMode::Both,
        )?;
        let column = table
            .iter()
            .map(|h| Ok(resolve_histogram(h, strategy)?.sign))
            .collect::<Result<Vec<Sign>, CoreError>>()?;
        signs.insert((o, r), column);
    }
    Ok(signs)
}

/// Runs the benchmark with the default thread ladder: 2 and 4 always
/// (even on a single hardware core the work-stealing driver must stay
/// correct and near-1x), 8 only when the host can actually run them.
pub fn run(quick: bool) -> Result<SweepReport, CoreError> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut ladder = vec![2usize, 4];
    if cores >= 8 {
        ladder.push(8);
    }
    run_with_threads(quick, &ladder)
}

/// Runs the benchmark sampling the parallel driver at exactly the given
/// thread counts (`ucra bench --threads 1,2,4` lands here). `quick`
/// selects the CI-sized shape; the full shape takes on the order of a
/// minute.
pub fn run_with_threads(quick: bool, thread_counts: &[usize]) -> Result<SweepReport, CoreError> {
    let config = if quick {
        StressConfig::quick()
    } else {
        StressConfig::full()
    };
    let model = deep_wide(config, &mut ucra_workload::rng(42));
    let strategy: Strategy = "D-LP-".parse().expect("legitimate mnemonic");
    let reps = if quick { 3 } else { 5 };

    let (reference_stats, reference) = {
        let (stats, out) = measure(WARMUP_ITERS, reps, || reference_matrix(&model, strategy));
        (stats, out?)
    };
    let (fused_stats, fused) = {
        let (stats, out) = measure(WARMUP_ITERS, reps, || {
            EffectiveMatrix::compute_for_pairs(
                &model.hierarchy,
                &model.eacm,
                strategy,
                &model.pairs,
            )
        });
        (stats, out?)
    };
    // Equivalence gate: a fast wrong kernel reports nothing.
    for (&(o, r), column) in &reference {
        for (i, &sign) in column.iter().enumerate() {
            let s = ucra_core::SubjectId::from_index(i);
            assert_eq!(
                fused.sign(s, o, r),
                Some(sign),
                "fused kernel diverged from the reference sweep at ({s}, {o}, {r})"
            );
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut parallel = Vec::new();
    for &threads in thread_counts {
        let threads = threads.max(1);
        let (stats, out) = measure(WARMUP_ITERS, reps, || {
            EffectiveMatrix::compute_for_pairs_parallel(
                &model.hierarchy,
                &model.eacm,
                strategy,
                &model.pairs,
                threads,
            )
        });
        let out = out?;
        assert_eq!(out, fused, "parallel driver diverged at {threads} threads");
        parallel.push(ThreadSample {
            threads,
            ns: stats.median_ns,
            min_ns: stats.min_ns,
            max_ns: stats.max_ns,
            speedup_vs_fused: fused_stats.median_ns as f64 / stats.median_ns as f64,
        });
    }

    Ok(SweepReport {
        quick,
        subjects: model.hierarchy.subject_count(),
        edges: model.hierarchy.membership_count(),
        pairs: model.pairs.len(),
        warmup: WARMUP_ITERS,
        reps,
        reference: reference_stats,
        fused: fused_stats,
        speedup: reference_stats.median_ns as f64 / fused_stats.median_ns as f64,
        cores,
        parallel,
    })
}

/// Writes the report to `BENCH_sweep.json` at the repository root and
/// returns the path written.
pub fn write_report(report: &SweepReport) -> std::io::Result<String> {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap_or(manifest);
    let path = root.join("BENCH_sweep.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_consistent_numbers() {
        let report = run_with_threads(true, &[1, 2]).unwrap();
        assert!(report.quick);
        assert_eq!(report.pairs, StressConfig::quick().pairs);
        assert!(report.reference.median_ns > 0 && report.fused.median_ns > 0);
        assert!(report.reference.min_ns <= report.reference.median_ns);
        assert!(report.fused.median_ns <= report.fused.max_ns);
        assert!(
            (report.speedup - report.reference.median_ns as f64 / report.fused.median_ns as f64)
                .abs()
                < 1e-9
        );
        assert_eq!(report.warmup, WARMUP_ITERS);
        let threads: Vec<usize> = report.parallel.iter().map(|s| s.threads).collect();
        assert_eq!(threads, vec![1, 2], "per-entry thread counts preserved");
        for s in &report.parallel {
            assert!(s.min_ns <= s.ns && s.ns <= s.max_ns);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"fused_sweep\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"warmup\""));
        assert!(json.contains("\"min_ns\""));
        // Well-formed enough for the CI validator: balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
