//! # `ucra-bench` — the experiment harness
//!
//! Shared fixtures, timing helpers and output formatting for
//!
//! * the **repro binaries** (`src/bin/repro_*.rs`), which regenerate every
//!   table and figure of the paper's evaluation section and write CSVs
//!   under `results/`; and
//! * the **criterion benches** (`benches/`), which measure the same code
//!   paths with statistical rigour.
//!
//! See DESIGN.md §3 for the experiment ↔ module index and EXPERIMENTS.md
//! for measured-vs-paper results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod host;
pub mod output;
pub mod plot;
pub mod serve;
pub mod sweep;
pub mod timing;

pub use fixtures::{kdag_with_auth, livelink_fixture, to_relational};
