//! Host provenance for benchmark reports.
//!
//! Every generated `BENCH_*.json` embeds a `host` object describing the
//! machine the numbers were taken on: the target architecture, which SIMD
//! feature levels the CPU reports, and which kernel backend the dispatcher
//! actually selected. Speed ratios in the reports are only meaningful
//! *within* one run on one host; the provenance block is what lets a reader
//! (or the CI gate) decide which threshold applies to a committed report.

use ucra_core::engine::simd::{active_backend, Backend};

/// Snapshot of the hardware/dispatch context a benchmark ran under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Compile-time target architecture (`std::env::consts::ARCH`).
    pub target_arch: &'static str,
    /// Whether the CPU reports AVX2 at runtime.
    pub avx2: bool,
    /// Whether the CPU reports SSE2 at runtime.
    pub sse2: bool,
    /// The backend the process-wide dispatcher selected (after any
    /// `UCRA_KERNEL_BACKEND` override or bench `--backend` pin).
    pub kernel_backend: &'static str,
}

impl HostInfo {
    /// Capture the current host's provenance.
    ///
    /// Forces backend selection as a side effect, so reports always show the
    /// backend the measured sweeps actually used.
    pub fn capture() -> Self {
        HostInfo {
            target_arch: std::env::consts::ARCH,
            avx2: Backend::Avx2.is_supported(),
            sse2: Backend::Sse2.is_supported(),
            kernel_backend: active_backend().as_str(),
        }
    }

    /// Render as a JSON object (no trailing comma/newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"target_arch\": \"{}\", \"avx2\": {}, \"sse2\": {}, \"kernel_backend\": \"{}\"}}",
            self.target_arch, self.avx2, self.sse2, self.kernel_backend
        )
    }

    /// One-line human rendering for console output.
    pub fn render(&self) -> String {
        format!(
            "host: {} (avx2={}, sse2={}) — kernel backend: {}",
            self.target_arch, self.avx2, self.sse2, self.kernel_backend
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_matches_dispatcher() {
        let h = HostInfo::capture();
        assert_eq!(h.kernel_backend, active_backend().as_str());
        // The selected backend must be one the host actually supports.
        let b: Backend = h.kernel_backend.parse().expect("valid backend name");
        assert!(b.is_supported());
        let json = h.to_json();
        assert!(json.contains("\"kernel_backend\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
