//! CSV and fixed-width table output for the repro binaries.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Writes CSV rows (with a header) to `results/<name>.csv` relative to
/// the workspace root, creating the directory if needed. Returns the
/// path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<String> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    Ok(path.display().to_string())
}

fn results_dir() -> std::path::PathBuf {
    // The binaries run from anywhere inside the workspace; anchor on the
    // crate's manifest and go up to the workspace root.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .join("results")
}

/// Renders a fixed-width text table (header + rows of equal arity).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[1].starts_with('-'));
        // All rows the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_writes_to_results() {
        let path = write_csv("unit_test_tmp", "x,y", &["1,2".to_string()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,2\n");
        std::fs::remove_file(path).unwrap();
    }
}
