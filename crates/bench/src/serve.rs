//! `serve_load` — concurrent read-heavy load against the HTTP daemon
//! with interleaved edits.
//!
//! Boots an in-process [`ucra_service::Server`] over a synthetic
//! installation, then drives it with persistent keep-alive client
//! threads issuing `check_many` batches while one editor thread toggles
//! explicit labels and flips the strategy. Reports client-observed
//! p50/p99/max request latency and end-to-end checks/sec into
//! `BENCH_serve.json` (same hand-rolled JSON convention as
//! `BENCH_sweep.json`; the harness deliberately has no serde
//! dependency).
//!
//! After the read phase, a dry-run phase posts an edit script to
//! `POST /impact` and records its latency and overlay counters.
//!
//! Within-run health gates, checked by the CI smoke job:
//!
//! * `full_invalidations` stays 0 — edits repaired, never flushed;
//! * at least one edit actually interleaved with the read traffic;
//! * every request returned 200;
//! * the `/impact` overlays report 0 full invalidations and the base
//!   session's `/stats` body is bit-identical before and after them.

use crate::timing::fmt_ns;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ucra_service::client::Connection;
use ucra_service::{Server, Service};
use ucra_store::AccessModel;

/// Shape of one load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Subjects in the synthetic hierarchy.
    pub subjects: usize,
    /// Objects × rights labeled pairs.
    pub objects: usize,
    /// Rights.
    pub rights: usize,
    /// Concurrent reader connections.
    pub clients: usize,
    /// `check_many` requests each reader issues per repetition.
    pub requests_per_client: usize,
    /// Queries per `check_many` batch.
    pub batch: usize,
    /// Unmeasured `check_many` requests issued before the clock starts,
    /// so the measured phase exercises the warmed steady state.
    pub warmup: usize,
    /// Measured repetitions of the read phase; latencies are pooled
    /// across repetitions.
    pub reps: usize,
    /// Dry-run `POST /impact` requests issued after the read phase.
    pub impact_requests: usize,
}

impl ServeConfig {
    /// CI-sized: finishes in a couple of seconds on one core.
    pub fn quick() -> Self {
        ServeConfig {
            subjects: 160,
            objects: 6,
            rights: 3,
            clients: 4,
            requests_per_client: 150,
            batch: 16,
            warmup: 8,
            reps: 1,
            impact_requests: 8,
        }
    }

    /// The full shape for local runs.
    pub fn full() -> Self {
        ServeConfig {
            subjects: 1200,
            objects: 10,
            rights: 4,
            clients: 8,
            requests_per_client: 400,
            batch: 32,
            warmup: 16,
            reps: 3,
            impact_requests: 32,
        }
    }
}

/// One pure-read scaling section: the same workload at a fixed number
/// of pre-connected keep-alive clients, editor idle.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Concurrent keep-alive reader connections in this section.
    pub clients: usize,
    /// Unmeasured warmup requests issued before this section's clock.
    pub warmup: usize,
    /// Measured repetitions pooled into this section's latencies.
    pub reps: usize,
    /// Individual checks answered in this section.
    pub total_checks: u64,
    /// Wall-clock time of the section's measured phase.
    pub wall_ns: u128,
    /// Section throughput.
    pub checks_per_sec: f64,
    /// Median client-observed latency.
    pub p50_ns: u128,
    /// 99th-percentile latency.
    pub p99_ns: u128,
}

/// The load run's result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// `true` when the CI-sized quick shape was used.
    pub quick: bool,
    /// The configuration that ran.
    pub config: ServeConfig,
    /// `std::thread::available_parallelism()` when the run happened.
    pub cores: usize,
    /// Individual checks answered (requests × batch).
    pub total_checks: u64,
    /// Wall-clock time of the read phase.
    pub wall_ns: u128,
    /// `total_checks / wall` — the headline throughput number.
    pub checks_per_sec: f64,
    /// Median client-observed `check_many` latency.
    pub p50_ns: u128,
    /// 99th-percentile latency.
    pub p99_ns: u128,
    /// Slowest single request.
    pub max_ns: u128,
    /// Edits the editor thread applied while reads were in flight.
    pub edits_applied: u64,
    /// Median client-observed edit latency.
    pub edit_p50_ns: u128,
    /// Sweeps the session computed (cold columns only — everything else
    /// was served from the shared cache).
    pub sweeps: u64,
    /// Whole-cache flushes observed by `/stats`; the CI gate requires 0.
    pub full_invalidations: u64,
    /// Incremental matrix-edit repairs observed by `/stats`.
    pub matrix_repairs: u64,
    /// `POST /impact` dry-runs issued after the read phase.
    pub impact_requests: u64,
    /// Median client-observed `/impact` latency.
    pub impact_p50_ns: u128,
    /// Full invalidations reported by the `/impact` overlays, summed
    /// across requests; the CI gate requires 0 (the overlay cone-repairs,
    /// never flushes).
    pub impact_full_invalidations: u64,
    /// Pure-read scaling sections at 1/2/4/8 clients (editor idle),
    /// each with its own warmup/reps/clients provenance.
    pub read_scaling: Vec<ScalePoint>,
    /// Decision-memo hits across the whole run.
    pub memo_hits: u64,
    /// Decision-memo misses across the whole run.
    pub memo_misses: u64,
    /// `hits / (hits + misses)`; the CI gate requires > 0.
    pub memo_hit_rate: f64,
    /// Epoch of the snapshot serving reads when the run ended.
    pub snapshot_epoch: u64,
    /// Snapshots published by edits over the run.
    pub snapshots_published: u64,
    /// Hardware + kernel-dispatch provenance for the run (sweeps behind
    /// the served checks use the same dispatched backend).
    pub host: crate::host::HostInfo,
}

impl ServeReport {
    /// The report as a JSON document (hand-rolled, like
    /// [`crate::sweep::SweepReport::to_json`]).
    pub fn to_json(&self) -> String {
        let scaling: Vec<String> = self
            .read_scaling
            .iter()
            .map(|p| {
                format!(
                    "    {{\"clients\": {}, \"warmup\": {}, \"reps\": {}, \
                     \"total_checks\": {}, \"wall_ns\": {}, \"checks_per_sec\": {:.1}, \
                     \"p50_ns\": {}, \"p99_ns\": {}}}",
                    p.clients,
                    p.warmup,
                    p.reps,
                    p.total_checks,
                    p.wall_ns,
                    p.checks_per_sec,
                    p.p50_ns,
                    p.p99_ns,
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"serve_load\",\n  \"quick\": {},\n  \"cores\": {},\n  \
             \"host\": {},\n  \
             \"warmup\": {},\n  \"reps\": {},\n  \
             \"workload\": {{\"subjects\": {}, \"objects\": {}, \"rights\": {}}},\n  \
             \"load\": {{\"clients\": {}, \"requests_per_client\": {}, \"batch\": {}}},\n  \
             \"throughput\": {{\"total_checks\": {}, \"wall_ns\": {}, \
             \"checks_per_sec\": {:.1}}},\n  \
             \"latency\": {{\"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}},\n  \
             \"read_scaling\": [\n{}\n  ],\n  \
             \"memo\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
             \"snapshot_epoch\": {}, \"snapshots_published\": {}}},\n  \
             \"edits\": {{\"applied\": {}, \"p50_ns\": {}}},\n  \
             \"impact\": {{\"requests\": {}, \"p50_ns\": {}, \
             \"full_invalidations\": {}}},\n  \
             \"session\": {{\"sweeps\": {}, \"full_invalidations\": {}, \
             \"matrix_repairs\": {}}}\n}}\n",
            self.quick,
            self.cores,
            self.host.to_json(),
            self.config.warmup,
            self.config.reps,
            self.config.subjects,
            self.config.objects,
            self.config.rights,
            self.config.clients,
            self.config.requests_per_client,
            self.config.batch,
            self.total_checks,
            self.wall_ns,
            self.checks_per_sec,
            self.p50_ns,
            self.p99_ns,
            self.max_ns,
            scaling.join(",\n"),
            self.memo_hits,
            self.memo_misses,
            self.memo_hit_rate,
            self.snapshot_epoch,
            self.snapshots_published,
            self.edits_applied,
            self.edit_p50_ns,
            self.impact_requests,
            self.impact_p50_ns,
            self.impact_full_invalidations,
            self.sweeps,
            self.full_invalidations,
            self.matrix_repairs,
        )
    }

    /// A terminal-friendly summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let c = &self.config;
        let _ = writeln!(out, "{}", self.host.render());
        let _ = writeln!(
            out,
            "serve_load ({}): {} subjects, {} pairs, {} clients x {} requests x batch {} \
             ({} warmup, {} reps)",
            if self.quick { "quick" } else { "full" },
            c.subjects,
            c.objects * c.rights,
            c.clients,
            c.requests_per_client,
            c.batch,
            c.warmup,
            c.reps
        );
        let _ = writeln!(
            out,
            "  throughput : {:.0} checks/sec ({} checks in {})",
            self.checks_per_sec,
            self.total_checks,
            fmt_ns(self.wall_ns)
        );
        let _ = writeln!(
            out,
            "  latency    : p50 {}  p99 {}  max {}",
            fmt_ns(self.p50_ns),
            fmt_ns(self.p99_ns),
            fmt_ns(self.max_ns)
        );
        for p in &self.read_scaling {
            let _ = writeln!(
                out,
                "  scaling    : {} clients -> {:.0} checks/sec (p50 {}, p99 {})",
                p.clients,
                p.checks_per_sec,
                fmt_ns(p.p50_ns),
                fmt_ns(p.p99_ns)
            );
        }
        let _ = writeln!(
            out,
            "  memo       : {} hits / {} misses (rate {:.2}), epoch {}, {} published",
            self.memo_hits,
            self.memo_misses,
            self.memo_hit_rate,
            self.snapshot_epoch,
            self.snapshots_published
        );
        let _ = writeln!(
            out,
            "  edits      : {} interleaved, p50 {}",
            self.edits_applied,
            fmt_ns(self.edit_p50_ns)
        );
        let _ = writeln!(
            out,
            "  impact     : {} dry-runs, p50 {}, {} overlay full flushes",
            self.impact_requests,
            fmt_ns(self.impact_p50_ns),
            self.impact_full_invalidations
        );
        let _ = writeln!(
            out,
            "  session    : {} sweeps, {} matrix repairs, {} full flushes",
            self.sweeps, self.matrix_repairs, self.full_invalidations
        );
        out
    }
}

fn subject(i: usize) -> String {
    format!("s{i}")
}

/// Deterministic synthetic installation: layered DAG plus labels on
/// every `(object, right)` pair.
fn build_model(cfg: &ServeConfig, seed: u64) -> AccessModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut model = AccessModel::new();
    for i in 0..cfg.subjects {
        model.subject(&subject(i));
    }
    for j in 1..cfg.subjects {
        // Every subject belongs to 1–3 earlier groups: connected,
        // acyclic, a few propagation paths per query.
        let parents = rng.gen_range(1..=3.min(j));
        for _ in 0..parents {
            let i = rng.gen_range(0..j);
            let _ = model.add_membership(&subject(i), &subject(j));
        }
    }
    for o in 0..cfg.objects {
        for r in 0..cfg.rights {
            let (obj, rt) = (format!("o{o}"), format!("r{r}"));
            // A handful of labels per pair, spread over the hierarchy.
            for _ in 0..(cfg.subjects / 12).max(2) {
                let s = subject(rng.gen_range(0..cfg.subjects));
                let res = if rng.gen_bool(0.7) {
                    model.grant(&s, &obj, &rt)
                } else {
                    model.deny(&s, &obj, &rt)
                };
                let _ = res; // contradictions on re-picked subjects: skip
            }
        }
    }
    model.set_default_strategy("D+LMP+".parse().expect("valid mnemonic"));
    model
}

/// One reader's batch body, pre-rendered so request serialisation is
/// not part of the measured latency.
fn batch_bodies(cfg: &ServeConfig, client: usize) -> Vec<String> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE ^ client as u64);
    (0..cfg.requests_per_client)
        .map(|_| {
            let queries: Vec<String> = (0..cfg.batch)
                .map(|_| {
                    format!(
                        "{{\"subject\":\"s{}\",\"object\":\"o{}\",\"right\":\"r{}\"}}",
                        rng.gen_range(0..cfg.subjects),
                        rng.gen_range(0..cfg.objects),
                        rng.gen_range(0..cfg.rights)
                    )
                })
                .collect();
            format!("{{\"queries\":[{}]}}", queries.join(","))
        })
        .collect()
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Pulls one `"key":<integer>` field out of the `/stats` JSON body
/// (the harness has no serde; the daemon's stats keys are flat).
fn stat_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// One read phase: `clients` keep-alive connections, opened and warmed
/// **outside the timed region** and reused across every repetition,
/// each issue `requests_per_client` batches per rep. Returns the pooled
/// per-request latencies and the measured wall-clock time.
fn read_phase(
    addr: std::net::SocketAddr,
    cfg: &ServeConfig,
    clients: usize,
    reps: usize,
    seed_base: usize,
    failures: &Arc<AtomicU64>,
) -> Result<(Vec<u128>, u128), String> {
    let mut pool = Vec::with_capacity(clients);
    for _ in 0..clients {
        pool.push(Connection::connect(addr).map_err(|e| e.to_string())?);
    }
    // Per-section warmup, unmeasured: re-touch the hot columns so a
    // section never starts against a cold snapshot or a cold socket.
    for body in batch_bodies(cfg, usize::MAX ^ seed_base)
        .iter()
        .take(cfg.warmup)
    {
        let (status, resp) = pool[0]
            .post("/check_many", body)
            .map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("warmup request failed with {status}: {resp}"));
        }
    }
    let mut latencies = Vec::new();
    let started = Instant::now();
    for rep in 0..reps.max(1) {
        let readers: Vec<_> = pool
            .drain(..)
            .enumerate()
            .map(|(client, mut conn)| {
                let failures = Arc::clone(failures);
                // A fresh deterministic body stream per (client, rep).
                let bodies = batch_bodies(cfg, seed_base + client + rep * clients);
                std::thread::spawn(move || {
                    let mut latencies = Vec::with_capacity(bodies.len());
                    for body in &bodies {
                        let start = Instant::now();
                        match conn.post("/check_many", body) {
                            Ok((200, _)) => latencies.push(start.elapsed().as_nanos()),
                            _ => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // Hand the connection back so the next repetition
                    // reuses it instead of reconnecting.
                    (conn, latencies)
                })
            })
            .collect();
        for reader in readers {
            let (conn, lat) = reader.join().expect("reader thread must not panic");
            pool.push(conn);
            latencies.extend(lat);
        }
    }
    Ok((latencies, started.elapsed().as_nanos()))
}

/// Runs the load and returns the report. Everything is in-process: the
/// server binds an ephemeral loopback port and the readers connect to
/// it like any external client would.
pub fn run(quick: bool) -> Result<ServeReport, String> {
    let cfg = if quick {
        ServeConfig::quick()
    } else {
        ServeConfig::full()
    };
    let model = build_model(&cfg, 7);
    let service = Arc::new(Service::from_model(
        &model,
        "D+LMP+".parse().expect("valid mnemonic"),
    ));
    let handle =
        Server::bind("127.0.0.1:0", service).map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = handle.addr();

    // Warm the cache so the measured phase exercises the steady state
    // (cold sweeps are the fused_sweep benchmark's subject, not this
    // one's).
    let mut warm = Connection::connect(addr).map_err(|e| e.to_string())?;
    for body in batch_bodies(&cfg, usize::MAX).iter().take(cfg.warmup) {
        let (status, resp) = warm.post("/check_many", body).map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("warmup request failed with {status}: {resp}"));
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let failures = Arc::new(AtomicU64::new(0));

    // The editor: toggle labels on a dedicated subject (set ↔ revoke
    // never contradicts) and flip the strategy, until the readers are
    // done.
    let editor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).expect("editor connect");
            let mut latencies = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                let (path, body) = match i % 4 {
                    0 => (
                        "/edit/authorization",
                        "{\"subject\":\"s1\",\"object\":\"o0\",\"right\":\"r0\",\"sign\":\"-\"}"
                            .to_string(),
                    ),
                    1 => (
                        "/edit/revoke",
                        "{\"subject\":\"s1\",\"object\":\"o0\",\"right\":\"r0\"}".to_string(),
                    ),
                    2 => ("/edit/strategy", "{\"strategy\":\"D-LP-\"}".to_string()),
                    _ => ("/edit/strategy", "{\"strategy\":\"D+LMP+\"}".to_string()),
                };
                let start = Instant::now();
                let ok = matches!(conn.post(path, &body), Ok((200 | 409, _)));
                latencies.push(start.elapsed().as_nanos());
                assert!(ok, "edit {path} failed");
                i += 1;
                // Reads dominate by design: ~read-heavy traffic with
                // occasional edits, not an edit storm.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            latencies
        })
    };

    // The headline phase at the configured client count, edits
    // interleaved. Connections are pre-opened and reused across reps.
    let (mut latencies, wall_ns) = read_phase(addr, &cfg, cfg.clients, cfg.reps, 0, &failures)?;
    stop.store(true, Ordering::Release);
    let mut edit_latencies = editor.join().expect("editor thread must not panic");

    // Pure-read scaling sections over the now-quiescent installation:
    // the identical workload at 1/2/4/8 keep-alive clients, so the
    // report shows how the lock-free snapshot path scales with readers.
    let mut read_scaling = Vec::new();
    for (i, &clients) in [1usize, 2, 4, 8].iter().enumerate() {
        let (mut lat, wall) = read_phase(addr, &cfg, clients, cfg.reps, 1000 * (i + 1), &failures)?;
        lat.sort_unstable();
        let total = (lat.len() * cfg.batch) as u64;
        read_scaling.push(ScalePoint {
            clients,
            warmup: cfg.warmup,
            reps: cfg.reps.max(1),
            total_checks: total,
            wall_ns: wall,
            checks_per_sec: total as f64 / (wall as f64 / 1e9),
            p50_ns: percentile(&lat, 0.50),
            p99_ns: percentile(&lat, 0.99),
        });
    }

    if failures.load(Ordering::Relaxed) > 0 {
        return Err(format!(
            "{} read requests failed; the daemon must answer every well-formed request",
            failures.load(Ordering::Relaxed)
        ));
    }
    let (status, stats_body) = warm.get("/stats").map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("/stats failed with {status}"));
    }

    // Dry-run phase: `POST /impact` is a pure read — the overlays it
    // evaluates must cone-repair (never flush), and the base session's
    // counters must come back bit-identical afterwards.
    let impact_body = "{\"edits\":\"revoke s1 o0 r0\\ndeny s1 o0 r0\\nstrategy D-LP-\\n\
                       subject zz_impact\\nmember s0 zz_impact\\ngrant zz_impact o1 r1\\n\"}";
    let mut impact_latencies = Vec::with_capacity(cfg.impact_requests);
    let mut impact_full_invalidations = 0u64;
    for _ in 0..cfg.impact_requests {
        let start = Instant::now();
        let (status, resp) = warm
            .post("/impact", impact_body)
            .map_err(|e| e.to_string())?;
        impact_latencies.push(start.elapsed().as_nanos());
        if status != 200 {
            return Err(format!("/impact failed with {status}: {resp}"));
        }
        impact_full_invalidations += stat_u64(&resp, "full_invalidations")
            .ok_or("impact response is missing \"full_invalidations\"")?;
    }
    let (status, stats_after) = warm.get("/stats").map_err(|e| e.to_string())?;
    if status != 200 {
        return Err(format!("/stats failed with {status}"));
    }
    if stats_after != stats_body {
        return Err(format!(
            "/impact mutated the base session: stats before {stats_body} != after {stats_after}"
        ));
    }
    impact_latencies.sort_unstable();

    latencies.sort_unstable();
    edit_latencies.sort_unstable();
    let total_checks = (latencies.len() * cfg.batch) as u64;
    let checks_per_sec = total_checks as f64 / (wall_ns as f64 / 1e9);
    let memo_hits = stat_u64(&stats_body, "memo_hits").unwrap_or(0);
    let memo_misses = stat_u64(&stats_body, "memo_misses").unwrap_or(0);
    let memo_hit_rate = if memo_hits + memo_misses > 0 {
        memo_hits as f64 / (memo_hits + memo_misses) as f64
    } else {
        0.0
    };
    Ok(ServeReport {
        quick,
        config: cfg,
        cores: std::thread::available_parallelism().map_or(1, usize::from),
        total_checks,
        wall_ns,
        checks_per_sec,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        max_ns: latencies.last().copied().unwrap_or(0),
        edits_applied: edit_latencies.len() as u64,
        edit_p50_ns: percentile(&edit_latencies, 0.50),
        sweeps: stat_u64(&stats_body, "sweeps").unwrap_or(0),
        full_invalidations: stat_u64(&stats_body, "full_invalidations").unwrap_or(u64::MAX),
        matrix_repairs: stat_u64(&stats_body, "matrix_repairs").unwrap_or(0),
        impact_requests: impact_latencies.len() as u64,
        impact_p50_ns: percentile(&impact_latencies, 0.50),
        impact_full_invalidations,
        read_scaling,
        memo_hits,
        memo_misses,
        memo_hit_rate,
        snapshot_epoch: stat_u64(&stats_body, "snapshot_epoch").unwrap_or(0),
        snapshots_published: stat_u64(&stats_body, "snapshots_published").unwrap_or(0),
        host: crate::host::HostInfo::capture(),
    })
}

/// Writes the report to `BENCH_serve.json` at the repository root and
/// returns the path written.
pub fn write_report(report: &ServeReport) -> std::io::Result<String> {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap_or(manifest);
    let path = root.join("BENCH_serve.json");
    std::fs::write(&path, report.to_json())?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        let sorted = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&sorted, 0.0), 10);
        assert_eq!(percentile(&sorted, 0.50), 60);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn stat_extraction_reads_flat_json() {
        let body = "{\"queries\":123,\"full_invalidations\":0,\"sweeps\":42}";
        assert_eq!(stat_u64(body, "queries"), Some(123));
        assert_eq!(stat_u64(body, "full_invalidations"), Some(0));
        assert_eq!(stat_u64(body, "sweeps"), Some(42));
        assert_eq!(stat_u64(body, "absent"), None);
    }

    #[test]
    fn quick_run_reports_consistent_numbers() {
        let report = run(true).unwrap();
        assert!(report.quick);
        assert_eq!(
            report.total_checks,
            (report.config.clients
                * report.config.requests_per_client
                * report.config.batch
                * report.config.reps) as u64
        );
        assert!(report.checks_per_sec > 0.0);
        assert!(report.p50_ns > 0 && report.p50_ns <= report.p99_ns);
        assert!(report.p99_ns <= report.max_ns);
        // The acceptance bar: edits really interleaved, and none of them
        // flushed the cache.
        assert!(report.edits_applied >= 1);
        assert_eq!(report.full_invalidations, 0);
        assert!(report.matrix_repairs >= 1, "label toggles must cone-repair");
        // The dry-run phase: every /impact overlay cone-repaired.
        assert_eq!(report.impact_requests, report.config.impact_requests as u64);
        assert!(report.impact_p50_ns > 0);
        assert_eq!(report.impact_full_invalidations, 0);
        // The scaling sections ran at every client count with full
        // provenance, and the memo saw real traffic.
        assert_eq!(
            report
                .read_scaling
                .iter()
                .map(|p| p.clients)
                .collect::<Vec<_>>(),
            vec![1, 2, 4, 8]
        );
        for p in &report.read_scaling {
            assert_eq!(p.warmup, report.config.warmup);
            assert_eq!(p.reps, report.config.reps.max(1));
            assert!(p.checks_per_sec > 0.0);
            assert!(p.p50_ns > 0 && p.p50_ns <= p.p99_ns);
            assert_eq!(
                p.total_checks,
                (p.clients * report.config.requests_per_client * report.config.batch * p.reps)
                    as u64
            );
        }
        assert!(report.memo_hits > 0, "hot repeats must hit the memo");
        assert!(report.memo_hit_rate > 0.0 && report.memo_hit_rate <= 1.0);
        assert!(report.snapshot_epoch > 1, "edits must have published");
        assert_eq!(report.snapshots_published, report.snapshot_epoch - 1);
        assert_eq!(
            report.host.kernel_backend,
            ucra_core::engine::simd::active_backend().as_str()
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve_load\""));
        assert!(json.contains("\"host\": {\"target_arch\": "));
        assert!(json.contains("\"kernel_backend\""));
        assert!(json.contains("\"checks_per_sec\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"warmup\": 8"));
        assert!(json.contains("\"reps\": 1"));
        assert!(json.contains("\"impact\": {\"requests\": 8, "));
        assert!(json.contains("\"read_scaling\": ["));
        assert!(json.contains("{\"clients\": 8, \"warmup\": 8, \"reps\": 1, "));
        assert!(json.contains("\"memo\": {\"hits\": "));
        assert!(json.contains("\"hit_rate\": "));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }
}
