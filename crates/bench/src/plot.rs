//! Minimal SVG chart rendering for the figure-reproduction binaries.
//!
//! Hand-rolled rather than pulled from a plotting crate: the repro
//! harness needs exactly two forms (multi-series line chart for Fig. 6,
//! scatter for Fig. 7) and nothing else, and the output must be a plain
//! standalone `.svg` the repository can ship.
//!
//! Visual contract (from the data-viz method this repo follows):
//! categorical hues in fixed validated order (blue, aqua, yellow — CVD
//! ΔE 47.2, checked with the palette validator); 2 px lines with round
//! caps; ≥8 px end markers with a 2 px surface ring; hairline solid
//! gridlines one step off the surface; a legend whenever there are ≥2
//! series plus direct end labels (the relief rule for the sub-3:1 aqua
//! and yellow slots — the CSVs next to each SVG are the table view);
//! text in ink tokens, never in series hues; one y-axis, always.

use std::fmt::Write as _;

/// Fixed categorical slots (validated order — do not re-sort).
pub const SERIES_COLORS: [&str; 3] = ["#2a78d6", "#1baf7a", "#eda100"];
const SURFACE: &str = "#fcfcfb";
const GRID: &str = "#e7e6e2";
const TEXT_PRIMARY: &str = "#0b0b0b";
const TEXT_SECONDARY: &str = "#52514e";

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend / end-label name.
    pub name: String,
    /// Data points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Series color (use [`SERIES_COLORS`] in order).
    pub color: &'static str,
}

/// Chart frame configuration.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Chart title (primary ink).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in px.
    pub width: f64,
    /// Canvas height in px.
    pub height: f64,
}

impl Default for Frame {
    fn default() -> Self {
        Frame {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 720.0,
            height: 440.0,
        }
    }
}

const MARGIN_LEFT: f64 = 72.0;
const MARGIN_RIGHT: f64 = 110.0; // room for direct end labels
const MARGIN_TOP: f64 = 56.0;
const MARGIN_BOTTOM: f64 = 56.0;

/// "Nice numbers" tick positions covering `[min, max]` with ~`n` ticks.
fn ticks(min: f64, max: f64, n: usize) -> Vec<f64> {
    if max <= min || max.is_nan() || min.is_nan() {
        return vec![min];
    }
    let raw_step = (max - min) / n.max(1) as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = mag
        * if norm <= 1.0 {
            1.0
        } else if norm <= 2.0 {
            2.0
        } else if norm <= 5.0 {
            5.0
        } else {
            10.0
        };
    let start = (min / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    // Strictly inside the data range (tolerating float error): a tick
    // outside the scale would render outside the plot area.
    while t <= max + step * 1e-9 {
        if t >= min - step * 1e-9 {
            out.push(t);
        }
        t += step;
    }
    if out.is_empty() {
        out.push(min);
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        // thousands comma
        let i = v.round() as i64;
        let s = i.abs().to_string();
        let mut grouped = String::new();
        for (ix, ch) in s.chars().enumerate() {
            if ix > 0 && (s.len() - ix).is_multiple_of(3) {
                grouped.push(',');
            }
            grouped.push(ch);
        }
        if i < 0 {
            format!("-{grouped}")
        } else {
            grouped
        }
    } else if v.fract().abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

struct Scale {
    min: f64,
    max: f64,
    px_lo: f64,
    px_hi: f64,
}

impl Scale {
    fn map(&self, v: f64) -> f64 {
        if self.max > self.min {
            self.px_lo + (v - self.min) / (self.max - self.min) * (self.px_hi - self.px_lo)
        } else {
            (self.px_lo + self.px_hi) / 2.0
        }
    }
}

fn bounds(series: &[Series]) -> ((f64, f64), (f64, f64)) {
    let mut xs = (f64::INFINITY, f64::NEG_INFINITY);
    let mut ys = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xs.0 = xs.0.min(x);
            xs.1 = xs.1.max(x);
            ys.0 = ys.0.min(y);
            ys.1 = ys.1.max(y);
        }
    }
    if !xs.0.is_finite() {
        xs = (0.0, 1.0);
        ys = (0.0, 1.0);
    }
    // Always anchor y at 0 for magnitude axes.
    ys.0 = ys.0.min(0.0);
    (xs, ys)
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Shared chart scaffold: surface, title, grid, axes, legend. Returns
/// the SVG prefix, the scales, and the suffix.
fn scaffold(frame: &Frame, series: &[Series]) -> (String, Scale, Scale, String) {
    let ((x_min, x_max), (y_min, y_max)) = bounds(series);
    let x = Scale {
        min: x_min,
        max: x_max,
        px_lo: MARGIN_LEFT,
        px_hi: frame.width - MARGIN_RIGHT,
    };
    let y = Scale {
        min: y_min,
        max: y_max,
        px_lo: frame.height - MARGIN_BOTTOM,
        px_hi: MARGIN_TOP,
    };
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, sans-serif">"#,
        w = frame.width,
        h = frame.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{}" height="{}" fill="{SURFACE}"/>"#,
        frame.width, frame.height
    );
    // Title.
    let _ = write!(
        svg,
        r#"<text x="{MARGIN_LEFT}" y="26" font-size="15" font-weight="600" fill="{TEXT_PRIMARY}">{}</text>"#,
        escape(&frame.title)
    );
    // Gridlines + y ticks.
    for t in ticks(y.min, y.max, 5) {
        let py = y.map(t);
        let _ = write!(
            svg,
            r#"<line x1="{x0}" y1="{py:.1}" x2="{x1}" y2="{py:.1}" stroke="{GRID}" stroke-width="1"/>"#,
            x0 = x.px_lo,
            x1 = x.px_hi
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{:.1}" font-size="11" text-anchor="end" fill="{TEXT_SECONDARY}" font-variant-numeric="tabular-nums">{}</text>"#,
            x.px_lo - 8.0,
            py + 4.0,
            fmt_tick(t)
        );
    }
    // X ticks.
    for t in ticks(x.min, x.max, 6) {
        let px = x.map(t);
        let _ = write!(
            svg,
            r#"<line x1="{px:.1}" y1="{y0}" x2="{px:.1}" y2="{y1}" stroke="{GRID}" stroke-width="1"/>"#,
            y0 = y.px_lo,
            y1 = y.px_lo + 4.0
        );
        let _ = write!(
            svg,
            r#"<text x="{px:.1}" y="{}" font-size="11" text-anchor="middle" fill="{TEXT_SECONDARY}" font-variant-numeric="tabular-nums">{}</text>"#,
            y.px_lo + 18.0,
            fmt_tick(t)
        );
    }
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{}" font-size="12" text-anchor="middle" fill="{TEXT_SECONDARY}">{}</text>"#,
        (x.px_lo + x.px_hi) / 2.0,
        frame.height - 14.0,
        escape(&frame.x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" fill="{TEXT_SECONDARY}" transform="rotate(-90 16 {:.1})">{}</text>"#,
        (y.px_lo + y.px_hi) / 2.0,
        (y.px_lo + y.px_hi) / 2.0,
        escape(&frame.y_label)
    );
    // Legend (≥2 series), one row under the title.
    if series.len() >= 2 {
        let mut lx = MARGIN_LEFT;
        for s in series {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="40" r="4" fill="{}"/>"#,
                lx + 4.0,
                s.color
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="44" font-size="11" fill="{TEXT_SECONDARY}">{}</text>"#,
                lx + 14.0,
                escape(&s.name)
            );
            lx += 14.0 + 7.0 * s.name.len() as f64 + 24.0;
        }
    }
    (svg, x, y, "</svg>".to_string())
}

/// Renders a multi-series line chart (2 px lines, 8 px end markers with
/// a surface ring, direct end labels).
pub fn line_chart(frame: &Frame, series: &[Series]) -> String {
    let (mut svg, x, y, tail) = scaffold(frame, series);
    for s in series {
        if s.points.is_empty() {
            continue;
        }
        let mut sorted = s.points.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let path: Vec<String> = sorted
            .iter()
            .enumerate()
            .map(|(i, &(px, py))| {
                format!(
                    "{}{:.1} {:.1}",
                    if i == 0 { "M" } else { "L" },
                    x.map(px),
                    y.map(py)
                )
            })
            .collect();
        let _ = write!(
            svg,
            r#"<path d="{}" fill="none" stroke="{}" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>"#,
            path.join(" "),
            s.color
        );
        // End marker: r=4 with a 2px surface ring.
        let &(ex, ey) = sorted.last().expect("non-empty");
        let _ = write!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="6" fill="{SURFACE}"/><circle cx="{:.1}" cy="{:.1}" r="4" fill="{}"/>"#,
            x.map(ex),
            y.map(ey),
            x.map(ex),
            y.map(ey),
            s.color
        );
        // Direct end label in ink (identity via the adjacent mark).
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" fill="{TEXT_PRIMARY}">{}</text>"#,
            x.map(ex) + 10.0,
            y.map(ey) + 4.0,
            escape(&s.name)
        );
    }
    svg + &tail
}

/// Renders a scatter chart. Dense scatters use small translucent dots
/// (an explicit deviation from the ≥8 px marker spec, which targets line
/// markers — 1,500 8 px dots would be one opaque blob); native `<title>`
/// tooltips carry per-point values.
pub fn scatter_chart(frame: &Frame, series: &[Series]) -> String {
    let (mut svg, x, y, tail) = scaffold(frame, series);
    for s in series {
        for &(px, py) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="{}" fill-opacity="0.45"><title>{}: ({}, {})</title></circle>"#,
                x.map(px),
                y.map(py),
                s.color,
                escape(&s.name),
                fmt_tick(px),
                fmt_tick(py)
            );
        }
    }
    svg + &tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            title: "Test <chart>".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            ..Frame::default()
        }
    }

    fn two_series() -> Vec<Series> {
        vec![
            Series {
                name: "alpha".into(),
                points: vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)],
                color: SERIES_COLORS[0],
            },
            Series {
                name: "beta".into(),
                points: vec![(0.0, 2.0), (2.0, 5.0)],
                color: SERIES_COLORS[1],
            },
        ]
    }

    #[test]
    fn line_chart_is_valid_svg_with_marks_and_legend() {
        let svg = line_chart(&frame(), &two_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2, "one path per series");
        assert!(svg.contains(r#"stroke-width="2""#));
        assert!(
            svg.contains("alpha") && svg.contains("beta"),
            "legend + end labels"
        );
        assert!(svg.contains("Test &lt;chart&gt;"), "title escaped");
        // End markers ship the surface ring (r=6 surface circle under r=4).
        assert!(svg.contains(r##"r="6" fill="#fcfcfb""##));
    }

    #[test]
    fn single_series_has_no_legend() {
        let one = vec![two_series().remove(0)];
        let svg = line_chart(&frame(), &one);
        // End label appears once; legend swatch circle r=4 at y=40 absent.
        assert!(!svg.contains(r#"cy="40" r="4""#));
    }

    #[test]
    fn scatter_emits_one_dot_per_point_with_tooltips() {
        let svg = scatter_chart(&frame(), &two_series());
        assert_eq!(svg.matches("<title>").count(), 5);
        assert_eq!(svg.matches(r#"r="2.5""#).count(), 5);
    }

    #[test]
    fn ticks_are_nice_and_cover_the_range() {
        let t = ticks(0.0, 97.0, 5);
        assert!(t.contains(&0.0));
        assert!(*t.last().unwrap() >= 80.0);
        for w in t.windows(2) {
            assert!(
                (w[1] - w[0] - 20.0).abs() < 1e-9,
                "step 20 for 0..97: {t:?}"
            );
        }
        assert_eq!(ticks(5.0, 5.0, 4), vec![5.0]);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(1500.0), "1,500");
        assert_eq!(fmt_tick(1234567.0), "1,234,567");
        assert_eq!(fmt_tick(12.0), "12");
        assert_eq!(fmt_tick(0.25), "0.25");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let svg = line_chart(&frame(), &[]);
        assert!(svg.ends_with("</svg>"));
        let empty_series = vec![Series {
            name: "e".into(),
            points: vec![],
            color: SERIES_COLORS[2],
        }];
        let svg = scatter_chart(&frame(), &empty_series);
        assert!(svg.ends_with("</svg>"));
    }
}
