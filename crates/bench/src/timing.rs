//! Minimal wall-clock timing for the repro binaries (criterion handles
//! the statistically careful measurements; the binaries want one honest
//! number per cell, fast).

use std::time::Instant;

/// Wall-clock summary of one measured configuration: the median of the
/// measured repetitions plus the min/max spread, so a reader can tell a
/// stable number from a noisy one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Median nanoseconds across the measured repetitions.
    pub median_ns: u128,
    /// Fastest repetition.
    pub min_ns: u128,
    /// Slowest repetition.
    pub max_ns: u128,
}

/// Runs `f` `warmup` times unmeasured (to populate caches, fault in
/// pages and spin up lazy thread pools), then `reps` measured times.
/// Returns median/min/max over the measured runs plus the last run's
/// result so the work cannot be optimised away.
pub fn measure<T>(warmup: usize, reps: usize, mut f: impl FnMut() -> T) -> (TimingStats, T) {
    assert!(reps >= 1);
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = std::hint::black_box(f());
        samples.push(start.elapsed().as_nanos());
        last = Some(out);
    }
    samples.sort_unstable();
    let stats = TimingStats {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    };
    (stats, last.expect("reps >= 1"))
}

/// Median wall-clock nanoseconds of `reps` runs of `f`, with no warmup.
/// The closure's result is returned (from the last run) so the measured
/// work cannot be optimised away by the caller discarding it.
pub fn median_ns<T>(reps: usize, f: impl FnMut() -> T) -> (u128, T) {
    let (stats, out) = measure(0, reps, f);
    (stats.median_ns, out)
}

/// Arithmetic mean of nanosecond samples.
pub fn mean_ns(samples: &[u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.iter().sum::<u128>() / samples.len() as u128
}

/// Formats nanoseconds human-readably (`842 ns`, `13.4 µs`, `2.1 ms`).
pub fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_returns_value_and_positive_time() {
        let (ns, v) = median_ns(5, || (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(ns > 0);
    }

    #[test]
    fn measure_runs_warmup_and_orders_stats() {
        let mut calls = 0u32;
        let (stats, v) = measure(2, 5, || {
            calls += 1;
            (0..1000).sum::<u64>()
        });
        assert_eq!(calls, 7, "2 warmup + 5 measured");
        assert_eq!(v, 499_500);
        assert!(stats.min_ns > 0);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
    }

    #[test]
    fn mean_of_samples() {
        assert_eq!(mean_ns(&[1, 2, 3]), 2);
        assert_eq!(mean_ns(&[]), 0);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
