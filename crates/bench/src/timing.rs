//! Minimal wall-clock timing for the repro binaries (criterion handles
//! the statistically careful measurements; the binaries want one honest
//! number per cell, fast).

use std::time::Instant;

/// Median wall-clock nanoseconds of `reps` runs of `f`. The closure's
/// result is returned (from the last run) so the measured work cannot be
/// optimised away by the caller discarding it.
pub fn median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    assert!(reps >= 1);
    let mut samples = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = std::hint::black_box(f());
        samples.push(start.elapsed().as_nanos());
        last = Some(out);
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], last.expect("reps >= 1"))
}

/// Arithmetic mean of nanosecond samples.
pub fn mean_ns(samples: &[u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.iter().sum::<u128>() / samples.len() as u128
}

/// Formats nanoseconds human-readably (`842 ns`, `13.4 µs`, `2.1 ms`).
pub fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_returns_value_and_positive_time() {
        let (ns, v) = median_ns(5, || (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(ns > 0);
    }

    #[test]
    fn mean_of_samples() {
        assert_eq!(mean_ns(&[1, 2, 3]), 2);
        assert_eq!(mean_ns(&[]), 0);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
