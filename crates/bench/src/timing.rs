//! Minimal wall-clock timing for the repro binaries (criterion handles
//! the statistically careful measurements; the binaries want one honest
//! number per cell, fast).

use std::time::Instant;

/// Wall-clock summary of one measured configuration: the median of the
/// measured repetitions plus the min/max spread, so a reader can tell a
/// stable number from a noisy one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Median nanoseconds across the measured repetitions.
    pub median_ns: u128,
    /// Fastest repetition.
    pub min_ns: u128,
    /// Slowest repetition.
    pub max_ns: u128,
}

/// Runs `f` `warmup` times unmeasured (to populate caches, fault in
/// pages and spin up lazy thread pools), then `reps` measured times.
/// Returns median/min/max over the measured runs plus the last run's
/// result so the work cannot be optimised away.
pub fn measure<T>(warmup: usize, reps: usize, mut f: impl FnMut() -> T) -> (TimingStats, T) {
    assert!(reps >= 1);
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = std::hint::black_box(f());
        samples.push(start.elapsed().as_nanos());
        last = Some(out);
    }
    (summarize(samples), last.expect("reps >= 1"))
}

fn summarize(mut samples: Vec<u128>) -> TimingStats {
    samples.sort_unstable();
    TimingStats {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    }
}

/// Measures two configurations of the same workload with interleaved,
/// alternating-order repetitions (rep 0: `a` then `b`; rep 1: `b` then
/// `a`; …). Back-to-back [`measure`] blocks see whatever frequency or
/// cache drift accumulates between them, which on a shared host can
/// exceed the effect being measured; pairing the reps makes both
/// configurations sample the same drift, so their *ratio* stays honest.
///
/// Besides the two per-configuration summaries, returns the per-rep
/// `(a, b)` nanosecond pairs. For a gated ratio, take the **median of
/// per-rep ratios** ([`median_pair_ratio`]) rather than the ratio of
/// medians: an interference burst on a shared host lands inside one
/// rep and poisons only that pair's ratio, while it can drag a whole
/// configuration's median.
#[allow(clippy::type_complexity)]
pub fn measure_paired<A, B>(
    warmup: usize,
    reps: usize,
    mut a: impl FnMut() -> A,
    mut b: impl FnMut() -> B,
) -> ((TimingStats, A), (TimingStats, B), Vec<(u128, u128)>) {
    assert!(reps >= 1);
    for _ in 0..warmup {
        std::hint::black_box(a());
        std::hint::black_box(b());
    }
    let mut a_samples = Vec::with_capacity(reps);
    let mut b_samples = Vec::with_capacity(reps);
    let mut last_a = None;
    let mut last_b = None;
    let mut time_a = |last_a: &mut Option<A>| {
        let start = Instant::now();
        let out = std::hint::black_box(a());
        a_samples.push(start.elapsed().as_nanos());
        *last_a = Some(out);
    };
    let mut time_b = |last_b: &mut Option<B>| {
        let start = Instant::now();
        let out = std::hint::black_box(b());
        b_samples.push(start.elapsed().as_nanos());
        *last_b = Some(out);
    };
    for rep in 0..reps {
        if rep % 2 == 0 {
            time_a(&mut last_a);
            time_b(&mut last_b);
        } else {
            time_b(&mut last_b);
            time_a(&mut last_a);
        }
    }
    drop(time_a);
    drop(time_b);
    let pairs = a_samples
        .iter()
        .copied()
        .zip(b_samples.iter().copied())
        .collect();
    (
        (summarize(a_samples), last_a.expect("reps >= 1")),
        (summarize(b_samples), last_b.expect("reps >= 1")),
        pairs,
    )
}

/// Median of the per-rep `b/a` ratios from [`measure_paired`] — the
/// outlier-robust estimator for "how much faster is `a` than `b`".
pub fn median_pair_ratio(pairs: &[(u128, u128)]) -> f64 {
    assert!(!pairs.is_empty());
    let mut ratios: Vec<f64> = pairs
        .iter()
        .map(|&(a, b)| b as f64 / a.max(1) as f64)
        .collect();
    ratios.sort_by(|x, y| x.total_cmp(y));
    ratios[ratios.len() / 2]
}

/// Median wall-clock nanoseconds of `reps` runs of `f`, with no warmup.
/// The closure's result is returned (from the last run) so the measured
/// work cannot be optimised away by the caller discarding it.
pub fn median_ns<T>(reps: usize, f: impl FnMut() -> T) -> (u128, T) {
    let (stats, out) = measure(0, reps, f);
    (stats.median_ns, out)
}

/// Arithmetic mean of nanosecond samples.
pub fn mean_ns(samples: &[u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.iter().sum::<u128>() / samples.len() as u128
}

/// Formats nanoseconds human-readably (`842 ns`, `13.4 µs`, `2.1 ms`).
pub fn fmt_ns(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_returns_value_and_positive_time() {
        let (ns, v) = median_ns(5, || (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(ns > 0);
    }

    #[test]
    fn measure_runs_warmup_and_orders_stats() {
        let mut calls = 0u32;
        let (stats, v) = measure(2, 5, || {
            calls += 1;
            (0..1000).sum::<u64>()
        });
        assert_eq!(calls, 7, "2 warmup + 5 measured");
        assert_eq!(v, 499_500);
        assert!(stats.min_ns > 0);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
    }

    #[test]
    fn paired_measure_interleaves_and_orders_stats() {
        let mut a_calls = 0u32;
        let mut b_calls = 0u32;
        let ((a_stats, av), (b_stats, bv), pairs) = measure_paired(
            1,
            5,
            || {
                a_calls += 1;
                (0..1000).sum::<u64>()
            },
            || {
                b_calls += 1;
                (0..500).sum::<u64>()
            },
        );
        assert_eq!(a_calls, 6, "1 warmup + 5 measured");
        assert_eq!(b_calls, 6, "1 warmup + 5 measured");
        assert_eq!(av, 499_500);
        assert_eq!(bv, 124_750);
        for s in [a_stats, b_stats] {
            assert!(s.min_ns > 0);
            assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        }
        assert_eq!(pairs.len(), 5);
        assert!(median_pair_ratio(&pairs) > 0.0);
    }

    #[test]
    fn pair_ratio_median_shrugs_off_one_poisoned_rep() {
        // Four clean reps at b/a = 2.0 and one where interference made
        // `a` look 100x slower: the median stays at the clean ratio.
        let pairs = [(10, 20), (10, 20), (1000, 20), (10, 20), (10, 20)];
        assert_eq!(median_pair_ratio(&pairs), 2.0);
    }

    #[test]
    fn mean_of_samples() {
        assert_eq!(mean_ns(&[1, 2, 3]), 2);
        assert_eq!(mean_ns(&[]), 0);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
