//! Workload fixtures shared by benches and repro binaries.

use ucra_core::{Eacm, ObjectId, RightId, Sign, SubjectDag, SubjectId};
use ucra_relational::{spec, Relation};
use ucra_workload::auth::{assign_by_edges, AuthConfig};
use ucra_workload::kdag::kdag;
use ucra_workload::livelink::{livelink, Livelink, LivelinkConfig};
use ucra_workload::rng;

/// The object/right pair every fixture labels.
pub const PAIR: (ObjectId, RightId) = (ObjectId(0), RightId(0));

/// A KDAG(n) with authorizations at `rate`, plus its designated sink.
pub fn kdag_with_auth(n: usize, rate: f64, seed: u64) -> (SubjectDag, Eacm, SubjectId) {
    let mut r = rng(seed);
    let k = kdag(n, &mut r);
    let (eacm, _) = assign_by_edges(
        &k.hierarchy,
        AuthConfig {
            rate,
            negative_share: 0.5,
            object: PAIR.0,
            right: PAIR.1,
        },
        &mut r,
    );
    (k.hierarchy, eacm, k.sink)
}

/// The Figure-7 fixture: a Livelink-like hierarchy plus an EACM at the
/// paper's 0.7 % edge rate with the given negative share.
pub fn livelink_fixture(seed: u64, negative_share: f64) -> (Livelink, Eacm) {
    let mut r = rng(seed);
    let l = livelink(LivelinkConfig::default(), &mut r);
    let (eacm, _) = assign_by_edges(
        &l.hierarchy,
        AuthConfig {
            rate: 0.007,
            negative_share,
            object: PAIR.0,
            right: PAIR.1,
        },
        &mut r,
    );
    (l, eacm)
}

/// Converts a core model into the relational spec's input relations,
/// for oracle comparisons and the engines ablation.
pub fn to_relational(hierarchy: &SubjectDag, eacm: &Eacm) -> (Relation, Relation) {
    let edges: Vec<(i64, i64)> = hierarchy
        .graph()
        .edges()
        .map(|(p, c)| (p.index() as i64, c.index() as i64))
        .collect();
    let entries: Vec<(i64, i64, i64, spec::Sign)> = eacm
        .iter()
        .map(|(s, o, r, sign)| {
            let sign = match sign {
                Sign::Pos => spec::Sign::Pos,
                Sign::Neg => spec::Sign::Neg,
            };
            (s.index() as i64, o.0 as i64, r.0 as i64, sign)
        })
        .collect();
    (spec::sdag_relation(&edges), spec::eacm_relation(&entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kdag_fixture_is_reproducible() {
        let (h1, e1, s1) = kdag_with_auth(30, 0.05, 99);
        let (h2, e2, s2) = kdag_with_auth(30, 0.05, 99);
        assert_eq!(s1, s2);
        assert_eq!(e1, e2);
        assert_eq!(h1.membership_count(), h2.membership_count());
    }

    #[test]
    fn relational_conversion_preserves_cardinalities() {
        let (h, e, _) = kdag_with_auth(20, 0.1, 7);
        let (sdag, eacm) = to_relational(&h, &e);
        assert_eq!(sdag.len(), h.membership_count());
        assert_eq!(eacm.len(), e.len());
    }
}
