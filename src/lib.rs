//! # `ucra` — A Unified Conflict Resolution Algorithm
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `ucra_core` for the paper's algorithms.

#![forbid(unsafe_code)]

pub use ucra_core as core;
pub use ucra_graph as graph;
pub use ucra_relational as relational;
pub use ucra_store as store;
pub use ucra_workload as workload;
