//! How much do the 48 strategies actually disagree? This example samples
//! random hierarchies and reports, per strategy pair, how often their
//! decisions differ — the quantitative argument for the paper's thesis
//! that conflict resolution must be configurable.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use std::collections::BTreeMap;
use ucra::core::{Resolver, Sign, Strategy};
use ucra::workload::auth::{assign_by_edges, AuthConfig};
use ucra::workload::layered::{layered, LayeredConfig};
use ucra::workload::rng;

fn main() {
    let strategies = Strategy::all_instances();
    let worlds = 40;
    let mut disagree_with_baseline: BTreeMap<String, usize> = BTreeMap::new();
    let baseline: Strategy = "D-LP-".parse().unwrap(); // Bertino et al.'s policy
    let mut total_queries = 0usize;
    let mut conflicted_queries = 0usize;

    let mut r = rng(17);
    for world in 0..worlds {
        let l = layered(
            LayeredConfig {
                layers: 5,
                width: 10,
                density: 0.12,
            },
            &mut r,
        );
        let (eacm, _) = assign_by_edges(&l.hierarchy, AuthConfig::with_rate(0.08), &mut r);
        let resolver = Resolver::new(&l.hierarchy, &eacm);
        // Query every bottom-layer individual.
        for &subject in &l.layers[l.layers.len() - 1] {
            total_queries += 1;
            let decisions: Vec<Sign> = strategies
                .iter()
                .map(|&s| {
                    resolver
                        .resolve(
                            subject,
                            ucra::core::ids::ObjectId(0),
                            ucra::core::ids::RightId(0),
                            s,
                        )
                        .expect("resolution is total")
                })
                .collect();
            if decisions.iter().any(|&d| d != decisions[0]) {
                conflicted_queries += 1;
            }
            let base = decisions[strategies.iter().position(|&s| s == baseline).unwrap()];
            for (strategy, &decision) in strategies.iter().zip(&decisions) {
                if decision != base {
                    *disagree_with_baseline
                        .entry(strategy.mnemonic())
                        .or_default() += 1;
                }
            }
        }
        if world == 0 {
            println!(
                "world shape: {} subjects, {} edges, {} labels",
                l.hierarchy.subject_count(),
                l.hierarchy.membership_count(),
                eacm.len()
            );
        }
    }

    println!(
        "\n{conflicted_queries} of {total_queries} queries get different answers from \
         different strategies\n"
    );
    println!("disagreement with the hardwired baseline D-LP- (Bertino et al.):");
    let mut rows: Vec<(usize, String)> = disagree_with_baseline
        .into_iter()
        .map(|(m, c)| (c, m))
        .collect();
    rows.sort();
    rows.reverse();
    for (count, mnemonic) in rows.iter().take(12) {
        let pct = 100.0 * *count as f64 / total_queries as f64;
        println!("  {mnemonic:>7}: {count:4} queries ({pct:4.1}%)");
    }
    println!(
        "\nA system that hardwires one policy silently answers {} queries\n\
         differently from what another reasonable policy would say — the\n\
         paper's case for making the strategy a runtime parameter.",
        rows.first().map(|(c, _)| *c).unwrap_or(0)
    );
}
