//! Quickstart: build a small hybrid-authorization world and resolve
//! conflicts under different strategies.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{Eacm, Resolver, Strategy, SubjectDag};

fn main() {
    // A DAG-shaped subject hierarchy (NOT a tree — alice belongs to two
    // groups, which is where conflicts come from).
    //
    //        engineering      security
    //          /      \        /
    //      backend    platform
    //          \        /
    //            alice
    let mut hierarchy = SubjectDag::new();
    let engineering = hierarchy.add_subject();
    let security = hierarchy.add_subject();
    let backend = hierarchy.add_subject();
    let platform = hierarchy.add_subject();
    let alice = hierarchy.add_subject();
    hierarchy.add_membership(engineering, backend).unwrap();
    hierarchy.add_membership(engineering, platform).unwrap();
    hierarchy.add_membership(security, platform).unwrap();
    hierarchy.add_membership(backend, alice).unwrap();
    hierarchy.add_membership(platform, alice).unwrap();

    // One object and right; a hybrid explicit matrix.
    let prod_db = ObjectId(0);
    let deploy = RightId(0);
    let mut eacm = Eacm::new();
    eacm.grant(engineering, prod_db, deploy).unwrap(); // engineers may deploy
    eacm.deny(security, prod_db, deploy).unwrap(); // security team says no

    // alice inherits + (via backend and platform) AND - (via platform):
    // a genuine conflict. The strategy decides.
    let resolver = Resolver::new(&hierarchy, &eacm);
    println!("May alice deploy to the production database?\n");
    for (mnemonic, why) in [
        ("D-LP-", "closed world, most-specific, deny-preferring"),
        ("D-LP+", "closed world, most-specific, allow-preferring"),
        ("D+GP-", "open world, most-general authority decides"),
        ("MP-", "majority vote over every inherited authorization"),
        ("P-", "pure preference: any conflict denies"),
    ] {
        let strategy: Strategy = mnemonic.parse().unwrap();
        let res = resolver
            .resolve_traced(alice, prod_db, deploy, strategy)
            .unwrap();
        println!("  {mnemonic:>6}  ->  {}   [{why}]", res.sign);
        println!("          trace: {res}");
    }

    // The full evidence the algorithm works from (the paper's Table 1):
    println!("\nInherited records (allRights) for alice:");
    let mut records = resolver.all_rights_records(alice, prod_db, deploy).unwrap();
    records.sort();
    for r in &records {
        println!("  distance {}  mode {}", r.dis, r.mode);
    }
    println!("\nSwitching strategies never re-propagates: one algorithm, 48 policies.");
}
