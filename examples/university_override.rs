//! The paper's two motivating anecdotes, modelled end to end with the
//! named `AccessModel` API:
//!
//! 1. **Globality** (§1.1): a student is authorized by the athletic
//!    office to referee hockey games, the department forbids heavy
//!    outside tasks, and the *university administration* — the most
//!    global authority — overrides both. `G` strategies capture this.
//! 2. **Majority** (§2.1): a GATT-style membership committee where the
//!    vote of the member bodies decides.
//!
//! ```text
//! cargo run --example university_override
//! ```

use ucra::core::Sign;
use ucra::store::AccessModel;

fn main() {
    globality_story();
    println!();
    majority_story();
}

fn globality_story() {
    println!("— Scenario 1: the hockey referee (locality vs globality) —");
    let mut m = AccessModel::new();
    // university ⊇ {athletics, department}; both contain the student.
    m.add_membership("university", "athletics").unwrap();
    m.add_membership("university", "department").unwrap();
    m.add_membership("athletics", "student").unwrap();
    m.add_membership("department", "student").unwrap();
    // The athletic office authorizes refereeing; the department forbids
    // heavy non-departmental tasks; the university says: let them referee.
    m.grant("athletics", "hockey-games", "referee").unwrap();
    m.deny("department", "hockey-games", "referee").unwrap();
    m.grant("university", "hockey-games", "referee").unwrap();

    for (mnemonic, reading) in [
        (
            "LP-",
            "most SPECIFIC takes precedence: athletics (+) ties department (-), deny-preference ⇒",
        ),
        (
            "GP-",
            "most GENERAL takes precedence: the university's grant stands alone ⇒",
        ),
    ] {
        let sign = m
            .check_with(
                "student",
                "hockey-games",
                "referee",
                mnemonic.parse().unwrap(),
            )
            .unwrap();
        println!("  {mnemonic:>4}  {reading} {sign}");
    }
    println!("  The enterprise picks `G…` and the student referees — no code change.");
}

fn majority_story() {
    println!("— Scenario 2: the admission vote (majority) —");
    let mut m = AccessModel::new();
    // Five member bodies all contain the applicant's membership file.
    for body in ["canada", "brazil", "japan", "norway", "kenya"] {
        m.add_membership(body, "applicant-file").unwrap();
    }
    m.grant("canada", "organization", "join").unwrap();
    m.grant("brazil", "organization", "join").unwrap();
    m.grant("japan", "organization", "join").unwrap();
    m.deny("norway", "organization", "join").unwrap();
    m.deny("kenya", "organization", "join").unwrap();

    let tally = m
        .check_with(
            "applicant-file",
            "organization",
            "join",
            "MP-".parse().unwrap(),
        )
        .unwrap();
    println!("  votes: 3 in favour, 2 against");
    println!("  MP-  (majority, deny on tie) ⇒ {tally}");
    assert_eq!(tally, Sign::Pos);

    // Under "denial takes precedence" the same application fails:
    let closed = m
        .check_with(
            "applicant-file",
            "organization",
            "join",
            "P-".parse().unwrap(),
        )
        .unwrap();
    println!("  P-   (any denial wins)       ⇒ {closed}");
    assert_eq!(closed, Sign::Neg);
    println!("  Same matrix, opposite outcomes — the strategy IS the policy.");
}
