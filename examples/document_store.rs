//! Document-store scenario exercising the paper's future-work
//! extensions, all implemented here:
//!
//! * a **mixed hierarchy**: authorizations on folders propagate to the
//!   documents inside them, combining with subject-side inheritance
//!   (future work #2);
//! * **propagation modes**: what happens when an inherited authorization
//!   crosses a subject that carries its own explicit label (future
//!   work #3);
//! * the **self-maintaining session** with per-pair cache invalidation
//!   and incremental repair of hierarchy edits (future work #1 + the
//!   related-work maintenance critique).
//!
//! ```text
//! cargo run --example document_store
//! ```

use ucra::core::engine::counting::{self, PropagationMode};
use ucra::core::ids::RightId;
use ucra::core::objects::{resolve_mixed_sign, ObjectDag};
use ucra::core::{AccessSession, Eacm, Sign, Strategy, SubjectDag};

fn main() {
    mixed_hierarchy();
    println!();
    propagation_modes();
    println!();
    live_session();
}

fn mixed_hierarchy() {
    println!("— Mixed subject + object hierarchy —");
    // Subjects: staff ⊇ {legal, interns}; mallory is in both.
    let mut subjects = SubjectDag::new();
    let staff = subjects.add_subject();
    let legal = subjects.add_subject();
    let interns = subjects.add_subject();
    let mallory = subjects.add_subject();
    subjects.add_membership(staff, legal).unwrap();
    subjects.add_membership(staff, interns).unwrap();
    subjects.add_membership(legal, mallory).unwrap();
    subjects.add_membership(interns, mallory).unwrap();

    // Objects: archive ⊇ case-files ⊇ deposition.
    let mut objects = ObjectDag::new();
    let archive = objects.add_object();
    let case_files = objects.add_object();
    let deposition = objects.add_object();
    objects.add_containment(archive, case_files).unwrap();
    objects.add_containment(case_files, deposition).unwrap();

    let read = RightId(0);
    let mut eacm = Eacm::new();
    eacm.grant(staff, archive, read).unwrap(); // staff read the archive
    eacm.deny(interns, case_files, read).unwrap(); // interns barred from case files

    // mallory inherits + from ⟨staff, archive⟩ at combined distance 2+2=4
    // and - from ⟨interns, case-files⟩ at 1+1=2: the deny is more specific
    // on BOTH axes.
    let specific: Strategy = "LP+".parse().unwrap();
    let general: Strategy = "GP-".parse().unwrap();
    let s1 = resolve_mixed_sign(
        &subjects, &objects, &eacm, mallory, deposition, read, specific,
    )
    .unwrap();
    let s2 = resolve_mixed_sign(
        &subjects, &objects, &eacm, mallory, deposition, read, general,
    )
    .unwrap();
    println!("  may mallory read the deposition?");
    println!("    LP+ (most specific wins): {s1}   — the intern-level deny is closer");
    println!("    GP- (most general wins) : {s2}   — the staff-wide grant is broader");
    assert_eq!((s1, s2), (Sign::Neg, Sign::Pos));
}

fn propagation_modes() {
    println!("— Propagation modes (what happens at a labeled subject) —");
    // ceo(+) → division(-) → team → dev
    let mut h = SubjectDag::new();
    let ceo = h.add_subject();
    let division = h.add_subject();
    let team = h.add_subject();
    let dev = h.add_subject();
    h.add_membership(ceo, division).unwrap();
    h.add_membership(division, team).unwrap();
    h.add_membership(team, dev).unwrap();
    let (o, r) = (ucra::core::ids::ObjectId(0), RightId(0));
    let mut eacm = Eacm::new();
    eacm.grant(ceo, o, r).unwrap();
    eacm.deny(division, o, r).unwrap();

    println!("  ceo grants, the division denies; what reaches the developer?");
    for (mode, name) in [
        (PropagationMode::Both, "Both (paper's semantics)"),
        (
            PropagationMode::SecondWins,
            "SecondWins (labels block inflow)",
        ),
        (
            PropagationMode::FirstWins,
            "FirstWins (inflow suppresses labels)",
        ),
    ] {
        let hist = counting::histogram(&h, &eacm, dev, o, r, mode).unwrap();
        let t = hist.totals().unwrap();
        println!("    {name:36} +:{} -:{}", t.pos, t.neg);
    }
    println!("  Under SecondWins the division firewall is absolute; under");
    println!("  FirstWins head office overrides; Both lets the strategy decide.");
}

fn live_session() {
    println!("— Self-maintaining session —");
    let mut session = AccessSession::empty("D-LP-".parse().unwrap());
    let admins = session.add_subject();
    let alice = session.add_subject();
    session.add_membership(admins, alice).unwrap();
    let (wiki, edit) = (ucra::core::ids::ObjectId(0), RightId(0));
    session
        .set_authorization(admins, wiki, edit, Sign::Pos)
        .unwrap();

    println!(
        "  alice edit wiki: {}",
        session.check(alice, wiki, edit).unwrap()
    );
    // Strategy switch: no re-propagation at all.
    session.set_strategy("D+LP+".parse().unwrap());
    println!(
        "  after switching to D+LP+: {}",
        session.check(alice, wiki, edit).unwrap()
    );
    // A matrix update invalidates exactly one (object, right) sweep; the
    // new deny sits at distance 0 and most-specific makes it decisive.
    session
        .set_authorization(alice, wiki, edit, Sign::Neg)
        .unwrap();
    println!(
        "  after explicit deny on alice: {}",
        session.check(alice, wiki, edit).unwrap()
    );
    // A hierarchy edit does not flush either: only the new member's
    // descendant cone is repaired in place, row by row.
    let bob = session.add_subject();
    session.add_membership(admins, bob).unwrap();
    println!(
        "  bob (new member of admins) edit wiki: {}",
        session.check(bob, wiki, edit).unwrap()
    );
    let stats = session.stats();
    println!(
        "  cache: {} queries, {} hits, {} sweeps, {} pair invalidations",
        stats.queries, stats.cache_hits, stats.sweeps, stats.pair_invalidations
    );
    println!(
        "  maintenance: {} full flushes, {} incremental repairs touching {} rows",
        stats.full_invalidations, stats.partial_repairs, stats.rows_repaired
    );
}
