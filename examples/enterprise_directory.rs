//! Enterprise-scale scenario: a Livelink-like directory (the paper's §4
//! case study), batch authorization checks through the memoised
//! resolver, and a separation-of-duty audit.
//!
//! ```text
//! cargo run --release --example enterprise_directory
//! ```

use ucra::core::constraints::{check_sod, SodConstraint};
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{EffectiveMatrix, MemoResolver, Sign, Strategy};
use ucra::workload::auth::{assign_by_edges, AuthConfig};
use ucra::workload::livelink::{livelink, LivelinkConfig};
use ucra::workload::rng;

fn main() {
    // A synthetic enterprise calibrated to the paper's Livelink numbers:
    // >8000 subjects, ~22k membership edges, 1582 individual users.
    let mut r = rng(2007);
    let org = livelink(LivelinkConfig::default(), &mut r);
    println!(
        "directory: {} subjects, {} membership edges, {} users",
        org.hierarchy.subject_count(),
        org.hierarchy.membership_count(),
        org.users.len()
    );

    // Two privileges with explicit labels at the paper's 0.7% edge rate.
    let contracts = ObjectId(0);
    let read = RightId(0);
    let (mut eacm, labeled) = assign_by_edges(
        &org.hierarchy,
        AuthConfig {
            rate: 0.007,
            negative_share: 0.3,
            object: contracts,
            right: read,
        },
        &mut r,
    );
    let sign_off = RightId(1);
    let (eacm2, _) = assign_by_edges(
        &org.hierarchy,
        AuthConfig {
            rate: 0.004,
            negative_share: 0.2,
            object: contracts,
            right: sign_off,
        },
        &mut r,
    );
    for (s, o, rr, sign) in eacm2.iter() {
        eacm.set(s, o, rr, sign)
            .expect("distinct right cannot contradict");
    }
    println!(
        "explicit matrix: {} labels ({} groups labeled for read)",
        eacm.len(),
        labeled.len()
    );

    // The installation runs the closed-world most-specific strategy; a
    // compliance review asks how many users would gain access if the
    // company switched to the open-world variant.
    let closed: Strategy = "D-LP-".parse().unwrap();
    let open: Strategy = "D+LP+".parse().unwrap();
    let memo = MemoResolver::new(&org.hierarchy, &eacm);
    let mut granted_closed = 0usize;
    let mut granted_open = 0usize;
    for &user in &org.users {
        if memo.resolve(user, contracts, read, closed).unwrap() == Sign::Pos {
            granted_closed += 1;
        }
        if memo.resolve(user, contracts, read, open).unwrap() == Sign::Pos {
            granted_open += 1;
        }
    }
    println!("\nusers who can read contracts:");
    println!("  under {closed} (closed world): {granted_closed}");
    println!("  under {open} (open world)  : {granted_open}");
    println!(
        "  cached propagation sweeps used: {} (one per object/right pair,\n\
         \u{20}  shared by all {} users and both strategies)",
        memo.cached_sweeps(),
        org.users.len()
    );

    // Separation of duty: nobody may both read and sign off contracts.
    let matrix = EffectiveMatrix::compute_for_pairs_parallel(
        &org.hierarchy,
        &eacm,
        closed,
        &[(contracts, read), (contracts, sign_off)],
        4,
    )
    .unwrap();
    let constraint = SodConstraint::mutual_exclusion(
        "contracts: read vs sign-off",
        vec![(contracts, read), (contracts, sign_off)],
    );
    let violations = check_sod(&org.hierarchy, &matrix, &[constraint]);
    println!("\nseparation-of-duty audit under {closed}:");
    println!(
        "  {} subject(s) effectively hold both privileges",
        violations.len()
    );
    for v in violations.iter().take(5) {
        println!("  - subject {} holds {:?}", v.subject, v.held);
    }
    if violations.len() > 5 {
        println!("  … and {} more", violations.len() - 5);
    }
}
