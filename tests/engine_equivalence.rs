//! Cross-engine equivalence: on random DAG worlds, the four independent
//! implementations must agree —
//!
//! * `path_enum` (paper-faithful Fig. 5),
//! * `counting` (our polynomial DP),
//! * the relational-algebra spec (literal Fig. 4/5 transcription),
//! * `MemoResolver` (cached sweeps),
//!
//! and `Dominance()` (both variants) must equal `Resolve(D-LP-)`.

use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ucra::core::engine::counting::{self, PropagationMode};
use ucra::core::engine::path_enum::{self, PropagateOptions};
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{
    dominance, dominance_specialized, resolve_histogram, DistanceHistogram, Eacm, MemoResolver,
    Sign, Strategy, SubjectDag,
};
use ucra::relational::spec;

const PAIR: (ObjectId, RightId) = (ObjectId(0), RightId(0));

/// A random DAG world built deterministically from (n, density, rate,
/// seed) — proptest shrinks the scalars.
fn world(n: usize, density: f64, label_rate: f64, seed: u64) -> (SubjectDag, Eacm) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                h.add_membership(ids[i], ids[j]).unwrap();
            }
        }
    }
    let mut eacm = Eacm::new();
    for &v in &ids {
        if rng.gen_bool(label_rate) {
            let sign = if rng.gen_bool(0.5) {
                Sign::Pos
            } else {
                Sign::Neg
            };
            eacm.set(v, PAIR.0, PAIR.1, sign).unwrap();
        }
    }
    (h, eacm)
}

fn to_relational(
    h: &SubjectDag,
    e: &Eacm,
) -> (ucra::relational::Relation, ucra::relational::Relation) {
    let edges: Vec<(i64, i64)> = h
        .graph()
        .edges()
        .map(|(p, c)| (p.index() as i64, c.index() as i64))
        .collect();
    let entries: Vec<(i64, i64, i64, spec::Sign)> = e
        .iter()
        .map(|(s, _, _, sign)| {
            let sign = match sign {
                Sign::Pos => spec::Sign::Pos,
                Sign::Neg => spec::Sign::Neg,
            };
            (s.index() as i64, 0, 0, sign)
        })
        .collect();
    (spec::sdag_relation(&edges), spec::eacm_relation(&entries))
}

fn spec_sign(s: spec::Sign) -> Sign {
    match s {
        spec::Sign::Pos => Sign::Pos,
        spec::Sign::Neg => Sign::Neg,
    }
}

fn to_spec_rules(
    s: Strategy,
) -> (
    spec::DefaultRule,
    spec::LocalityRule,
    spec::MajorityRule,
    spec::Sign,
) {
    use ucra::core::{DefaultRule as D, LocalityRule as L, MajorityRule as M};
    (
        match s.default_rule() {
            D::Pos => spec::DefaultRule::Pos,
            D::Neg => spec::DefaultRule::Neg,
            D::NoDefault => spec::DefaultRule::NoDefault,
        },
        match s.locality_rule() {
            L::MostSpecific => spec::LocalityRule::Min,
            L::MostGeneral => spec::LocalityRule::Max,
            L::Identity => spec::LocalityRule::Identity,
        },
        match s.majority_rule() {
            M::Before => spec::MajorityRule::Before,
            M::After => spec::MajorityRule::After,
            M::Skip => spec::MajorityRule::Skip,
        },
        match s.preference_rule() {
            Sign::Pos => spec::Sign::Pos,
            Sign::Neg => spec::Sign::Neg,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// path_enum and counting produce identical histograms for every
    /// subject of every random world.
    #[test]
    fn histograms_agree(
        n in 1usize..14,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        for s in h.subjects() {
            let recs = path_enum::propagate(&h, &eacm, s, PAIR.0, PAIR.1, PropagateOptions::default()).unwrap();
            let from_paths = DistanceHistogram::from_records(&recs).unwrap();
            let counted = counting::histogram(&h, &eacm, s, PAIR.0, PAIR.1, PropagationMode::Both).unwrap();
            prop_assert_eq!(&from_paths, &counted, "subject {}", s);
        }
    }

    /// The relational spec agrees with the core resolver on every
    /// subject × a per-case strategy sample (all 48 over the run).
    #[test]
    fn relational_spec_agrees(
        n in 1usize..10,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
        strategy_ix in 0usize..48,
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        let (sdag_rel, eacm_rel) = to_relational(&h, &eacm);
        let strategy = Strategy::all_instances()[strategy_ix];
        let (d, l, m, p) = to_spec_rules(strategy);
        let resolver = ucra::core::Resolver::new(&h, &eacm);
        for s in h.subjects() {
            let via_spec = spec_sign(
                spec::resolve(&sdag_rel, &eacm_rel, s.index() as i64, 0, 0, d, l, m, p).unwrap(),
            );
            let via_core = resolver.resolve(s, PAIR.0, PAIR.1, strategy).unwrap();
            prop_assert_eq!(via_spec, via_core, "subject {} strategy {}", s, strategy);
        }
    }

    /// The memoised resolver returns the same traces as the plain one.
    #[test]
    fn memo_agrees(
        n in 1usize..14,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
        strategy_ix in 0usize..48,
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        let strategy = Strategy::all_instances()[strategy_ix];
        let memo = MemoResolver::new(&h, &eacm);
        let plain = ucra::core::Resolver::new(&h, &eacm);
        for s in h.subjects() {
            prop_assert_eq!(
                memo.resolve_traced(s, PAIR.0, PAIR.1, strategy).unwrap(),
                plain.resolve_traced(s, PAIR.0, PAIR.1, strategy).unwrap()
            );
        }
    }

    /// Both Dominance variants equal Resolve(D-LP-) everywhere.
    #[test]
    fn dominance_equals_resolve_dnlpn(
        n in 1usize..14,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        let strategy: Strategy = "D-LP-".parse().unwrap();
        let resolver = ucra::core::Resolver::new(&h, &eacm);
        for s in h.subjects() {
            let want = resolver.resolve(s, PAIR.0, PAIR.1, strategy).unwrap();
            prop_assert_eq!(dominance(&h, &eacm, s, PAIR.0, PAIR.1).unwrap(), want);
            prop_assert_eq!(dominance_specialized(&h, &eacm, s, PAIR.0, PAIR.1).unwrap(), want);
        }
    }

    /// Every propagation mode (paper future work #3) is bag-equivalent
    /// between the per-path engine and the counting DP, not just the
    /// default `Both`.
    #[test]
    fn propagation_modes_agree_across_engines(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        for mode in [
            PropagationMode::Both,
            PropagationMode::SecondWins,
            PropagationMode::FirstWins,
        ] {
            for s in h.subjects() {
                let recs = path_enum::propagate(
                    &h,
                    &eacm,
                    s,
                    PAIR.0,
                    PAIR.1,
                    path_enum::PropagateOptions { mode, ..Default::default() },
                ).unwrap();
                let from_paths = DistanceHistogram::from_records(&recs).unwrap();
                let counted =
                    counting::histogram(&h, &eacm, s, PAIR.0, PAIR.1, mode).unwrap();
                prop_assert_eq!(&from_paths, &counted, "mode {:?} subject {}", mode, s);
            }
        }
    }

    /// The relational spec's full Table-3 trace (c₁, c₂, Auth, line)
    /// matches the core resolver's, not just the final sign.
    #[test]
    fn relational_spec_traces_agree(
        n in 1usize..9,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
        strategy_ix in 0usize..48,
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        let (sdag_rel, eacm_rel) = to_relational(&h, &eacm);
        let strategy = Strategy::all_instances()[strategy_ix];
        let (d, l, m, p) = to_spec_rules(strategy);
        let resolver = ucra::core::Resolver::new(&h, &eacm);
        for s in h.subjects() {
            let spec_trace = spec::resolve_traced(
                &sdag_rel, &eacm_rel, s.index() as i64, 0, 0, d, l, m, p,
            ).unwrap();
            let core_trace = resolver.resolve_traced(s, PAIR.0, PAIR.1, strategy).unwrap();
            prop_assert_eq!(spec_sign(spec_trace.sign), core_trace.sign);
            prop_assert_eq!(spec_trace.line, core_trace.line.line_number());
            prop_assert_eq!(spec_trace.c1.map(|c| c as u128), core_trace.c1);
            prop_assert_eq!(spec_trace.c2.map(|c| c as u128), core_trace.c2);
            let spec_auth = spec_trace.auth.map(|v| {
                v.into_iter().map(spec_sign).collect::<std::collections::BTreeSet<_>>()
            });
            prop_assert_eq!(spec_auth, core_trace.auth);
        }
    }

    /// Resolution is total: every strategy yields a definite sign, and
    /// resolve_histogram is deterministic.
    #[test]
    fn resolution_is_total_and_deterministic(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        let resolver = ucra::core::Resolver::new(&h, &eacm);
        for s in h.subjects().take(4) {
            let hist = resolver.all_rights_histogram(s, PAIR.0, PAIR.1).unwrap();
            for strategy in Strategy::all_instances() {
                let a = resolve_histogram(&hist, strategy).unwrap();
                let b = resolve_histogram(&hist, strategy).unwrap();
                prop_assert_eq!(&a, &b);
                prop_assert!(matches!(a.sign, Sign::Pos | Sign::Neg));
            }
        }
    }
}
