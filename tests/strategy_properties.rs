//! Semantic invariants of the strategy framework, checked on random
//! worlds. These are the properties §2 of the paper argues informally.

use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{
    DecisionLine, DefaultRule, Eacm, LocalityRule, MajorityRule, Resolver, Sign, Strategy,
    SubjectDag,
};

const PAIR: (ObjectId, RightId) = (ObjectId(0), RightId(0));

fn world(n: usize, density: f64, label_rate: f64, seed: u64) -> (SubjectDag, Eacm) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                h.add_membership(ids[i], ids[j]).unwrap();
            }
        }
    }
    let mut eacm = Eacm::new();
    for &v in &ids {
        if rng.gen_bool(label_rate) {
            let sign = if rng.gen_bool(0.5) {
                Sign::Pos
            } else {
                Sign::Neg
            };
            eacm.set(v, PAIR.0, PAIR.1, sign).unwrap();
        }
    }
    (h, eacm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Flipping only the preference sign changes the outcome exactly on
    /// the queries the preference decided (Line 9), and nowhere else.
    #[test]
    fn preference_only_matters_at_line_9(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
        strategy_ix in 0usize..48,
    ) {
        let (h, eacm) = world(n, density, rate, seed);
        let resolver = Resolver::new(&h, &eacm);
        let s = Strategy::all_instances()[strategy_ix];
        let flipped = Strategy::new(
            s.default_rule(),
            s.locality_rule(),
            s.majority_rule(),
            s.preference_rule().flipped(),
        );
        for subject in h.subjects() {
            let a = resolver.resolve_traced(subject, PAIR.0, PAIR.1, s).unwrap();
            let b = resolver.resolve_traced(subject, PAIR.0, PAIR.1, flipped).unwrap();
            prop_assert_eq!(a.line, b.line, "deciding line is preference-independent");
            if a.line == DecisionLine::Preference {
                prop_assert_eq!(a.sign, b.sign.flipped());
            } else {
                prop_assert_eq!(a.sign, b.sign);
            }
        }
    }

    /// With no explicit labels anywhere, the decision is fully dictated
    /// by the default policy (and by the preference when defaults are
    /// off).
    #[test]
    fn unlabeled_world_follows_default_then_preference(
        n in 1usize..12,
        density in 0.0f64..0.6,
        seed in any::<u64>(),
        strategy_ix in 0usize..48,
    ) {
        let (h, _) = world(n, density, 0.0, seed);
        let eacm = Eacm::new();
        let resolver = Resolver::new(&h, &eacm);
        let s = Strategy::all_instances()[strategy_ix];
        for subject in h.subjects() {
            let got = resolver.resolve(subject, PAIR.0, PAIR.1, s).unwrap();
            let want = match s.default_rule() {
                DefaultRule::Pos => Sign::Pos,
                DefaultRule::Neg => Sign::Neg,
                DefaultRule::NoDefault => s.preference_rule(),
            };
            prop_assert_eq!(got, want);
        }
    }

    /// A subject with its own explicit label always resolves to that
    /// label under any most-specific strategy without majority: distance
    /// 0 beats everything.
    #[test]
    fn own_label_wins_under_most_specific(
        n in 2usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
        d_ix in 0usize..3,
        p_pos in any::<bool>(),
    ) {
        let (h, mut eacm) = world(n, density, rate, seed);
        let subject = h.subjects().last().unwrap();
        eacm.unset(subject, PAIR.0, PAIR.1);
        eacm.set(subject, PAIR.0, PAIR.1, Sign::Neg).unwrap();
        let d = [DefaultRule::Pos, DefaultRule::Neg, DefaultRule::NoDefault][d_ix];
        let p = if p_pos { Sign::Pos } else { Sign::Neg };
        let strategy = Strategy::new(d, LocalityRule::MostSpecific, MajorityRule::Skip, p);
        let resolver = Resolver::new(&h, &eacm);
        prop_assert_eq!(
            resolver.resolve(subject, PAIR.0, PAIR.1, strategy).unwrap(),
            Sign::Neg
        );
    }

    /// Strategy canonicalisation: parsing a mnemonic and rebuilding from
    /// the accessors is the identity, for all 48.
    #[test]
    fn strategy_accessors_rebuild_identity(strategy_ix in 0usize..48) {
        let s = Strategy::all_instances()[strategy_ix];
        let rebuilt = Strategy::new(
            s.default_rule(),
            s.locality_rule(),
            s.majority_rule(),
            s.preference_rule(),
        );
        prop_assert_eq!(s, rebuilt);
        let parsed: Strategy = s.mnemonic().parse().unwrap();
        prop_assert_eq!(s, parsed);
    }

    /// On a pure chain (one path), locality min and the Dominance-style
    /// nearest-label semantics coincide for D-LP-; and majority equals
    /// counting the labels above.
    #[test]
    fn chain_world_sanity(
        len in 1usize..10,
        labels in proptest::collection::vec(proptest::option::of(any::<bool>()), 1..10),
        seed in any::<u64>(),
    ) {
        let _ = seed;
        let mut h = SubjectDag::new();
        let n = len.max(labels.len());
        let ids = h.add_subjects(n);
        for w in ids.windows(2) {
            h.add_membership(w[0], w[1]).unwrap();
        }
        let mut eacm = Eacm::new();
        for (i, lab) in labels.iter().enumerate().take(n) {
            if let Some(pos) = lab {
                eacm.set(ids[i], PAIR.0, PAIR.1, if *pos { Sign::Pos } else { Sign::Neg }).unwrap();
            }
        }
        let sink = ids[n - 1];
        let resolver = Resolver::new(&h, &eacm);
        // Nearest label above the sink (or the root default) decides.
        let nearest = (0..n).rev().find_map(|i| {
            eacm.label(ids[i], PAIR.0, PAIR.1)
        });
        let expected = match nearest {
            // On a chain, if ANY label exists, the nearest one to the sink
            // is strictly closer than the root default (the root is
            // labeled or farther), except when the root itself carries the
            // nearest label — then there is no default at all.
            Some(sign) => sign,
            None => Sign::Neg, // only the root default remains
        };
        prop_assert_eq!(
            resolver.resolve(sink, PAIR.0, PAIR.1, "D-LP-".parse().unwrap()).unwrap(),
            expected
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// §5 equivalences on random worlds: XACML deny-overrides with a deny
    /// default is the strategy instance P-, permit-overrides with a
    /// permit default is P+, and Bertino et al.'s weak/strong model is
    /// D-LP-.
    #[test]
    fn related_work_equivalences(
        n in 1usize..13,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        use ucra::core::related::{
            bertino_weak_strong, combine, with_default, CombiningAlgorithm,
        };
        let (h, eacm) = world(n, density, rate, seed);
        let resolver = Resolver::new(&h, &eacm);
        for s in h.subjects() {
            let hist = resolver.all_rights_histogram(s, PAIR.0, PAIR.1).unwrap();
            prop_assert_eq!(
                with_default(combine(&hist, CombiningAlgorithm::DenyOverrides), Sign::Neg),
                resolver.resolve(s, PAIR.0, PAIR.1, "P-".parse().unwrap()).unwrap()
            );
            prop_assert_eq!(
                with_default(combine(&hist, CombiningAlgorithm::PermitOverrides), Sign::Pos),
                resolver.resolve(s, PAIR.0, PAIR.1, "P+".parse().unwrap()).unwrap()
            );
            prop_assert_eq!(
                bertino_weak_strong(&h, &eacm, s, PAIR.0, PAIR.1).unwrap(),
                resolver.resolve(s, PAIR.0, PAIR.1, "D-LP-".parse().unwrap()).unwrap()
            );
        }
    }
}

/// The locality filter is conservative: under `L` (most specific) and no
/// majority, adding a *farther* authorization never changes the result.
#[test]
fn farther_labels_cannot_override_most_specific() {
    // chain: a → b → c, label b, then add a label on a (farther from c).
    let mut h = SubjectDag::new();
    let a = h.add_subject();
    let b = h.add_subject();
    let c = h.add_subject();
    h.add_membership(a, b).unwrap();
    h.add_membership(b, c).unwrap();
    for near in [Sign::Pos, Sign::Neg] {
        for far in [Sign::Pos, Sign::Neg] {
            let mut eacm = Eacm::new();
            eacm.set(b, PAIR.0, PAIR.1, near).unwrap();
            let before = Resolver::new(&h, &eacm)
                .resolve(c, PAIR.0, PAIR.1, "D-LP-".parse().unwrap())
                .unwrap();
            eacm.set(a, PAIR.0, PAIR.1, far).unwrap();
            let after = Resolver::new(&h, &eacm)
                .resolve(c, PAIR.0, PAIR.1, "D-LP-".parse().unwrap())
                .unwrap();
            assert_eq!(before, after, "near={near:?} far={far:?}");
            assert_eq!(after, near);
        }
    }
}
