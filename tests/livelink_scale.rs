//! Enterprise-scale smoke test: the default Livelink-calibrated
//! hierarchy (8k+ subjects, 22k+ edges), checked for engine agreement,
//! Dominance equivalence, memo-cache consistency and statistic ranges —
//! the workload behind the paper's Figure 7, exercised at full size.

use ucra::core::engine::path_enum::{self, PropagateOptions};
use ucra::core::{
    dominance, dominance_specialized, DistanceHistogram, MemoResolver, Resolver, Strategy,
};
use ucra::workload::auth::{assign_by_edges, AuthConfig};
use ucra::workload::livelink::{livelink, LivelinkConfig};
use ucra::workload::rng;
use ucra::workload::stats::query_stats;

const PAIR: (ucra::core::ObjectId, ucra::core::RightId) =
    (ucra::core::ObjectId(0), ucra::core::RightId(0));

#[test]
fn full_scale_engines_agree_on_sampled_users() {
    let mut r = rng(2007);
    let l = livelink(LivelinkConfig::default(), &mut r);
    let (eacm, _) = assign_by_edges(
        &l.hierarchy,
        AuthConfig {
            rate: 0.007,
            negative_share: 0.5,
            object: PAIR.0,
            right: PAIR.1,
        },
        &mut r,
    );
    let resolver = Resolver::new(&l.hierarchy, &eacm);
    let memo = MemoResolver::new(&l.hierarchy, &eacm);
    let strategies: Vec<Strategy> = ["D-LP-", "D+GMP+", "MP-", "LMP+"]
        .iter()
        .map(|m| m.parse().unwrap())
        .collect();

    for &user in l.users.iter().step_by(79) {
        // Counting vs path-enumeration histograms.
        let recs = path_enum::propagate(
            &l.hierarchy,
            &eacm,
            user,
            PAIR.0,
            PAIR.1,
            PropagateOptions::with_budget(50_000_000),
        )
        .unwrap();
        let from_paths = DistanceHistogram::from_records(&recs).unwrap();
        let counted = resolver.all_rights_histogram(user, PAIR.0, PAIR.1).unwrap();
        assert_eq!(from_paths, counted, "user {user}");

        // Resolutions across resolver flavours.
        for &s in &strategies {
            assert_eq!(
                resolver.resolve_traced(user, PAIR.0, PAIR.1, s).unwrap(),
                memo.resolve_traced(user, PAIR.0, PAIR.1, s).unwrap(),
                "user {user} strategy {s}"
            );
        }

        // Dominance variants = Resolve(D-LP-).
        let want = resolver
            .resolve(user, PAIR.0, PAIR.1, "D-LP-".parse().unwrap())
            .unwrap();
        assert_eq!(
            dominance(&l.hierarchy, &eacm, user, PAIR.0, PAIR.1).unwrap(),
            want
        );
        assert_eq!(
            dominance_specialized(&l.hierarchy, &eacm, user, PAIR.0, PAIR.1).unwrap(),
            want
        );
    }
    // The whole batch shares one cached sweep.
    assert_eq!(memo.cached_sweeps(), 1);
}

#[test]
fn full_scale_query_stats_are_in_papers_ranges() {
    let mut r = rng(2007);
    let l = livelink(LivelinkConfig::default(), &mut r);
    let (eacm, _) = assign_by_edges(
        &l.hierarchy,
        AuthConfig {
            rate: 0.007,
            negative_share: 0.5,
            object: PAIR.0,
            right: PAIR.1,
        },
        &mut r,
    );
    let mut max_nodes = 0usize;
    let mut max_d = 0u128;
    for &user in l.users.iter().step_by(41) {
        let st = query_stats(&l.hierarchy, &eacm, user, PAIR.0, PAIR.1);
        assert!(st.subgraph_nodes >= 2, "every user has a group");
        assert!(st.roots >= 1);
        // d counts at least one path from each source.
        assert!(st.d >= st.labeled_ancestors as u128);
        max_nodes = max_nodes.max(st.subgraph_nodes);
        max_d = max_d.max(st.d);
    }
    // Far from the exponential regime — the paper's Fig. 7(b) conclusion.
    assert!(max_nodes < l.hierarchy.subject_count());
    assert!(max_d < 1_000_000, "d stays polynomial-sized (got {max_d})");
}
