//! Differential testing of [`ucra::core::AccessSession`]'s cache
//! maintenance: apply a random sequence of mutations and queries, and
//! after every query compare the session's (cached) answer against a
//! fresh, cache-free resolver over the same state. Any stale-cache bug
//! shows up as a divergence.

use proptest::prelude::*;
use proptest::strategy::Strategy as _; // `ucra::core::Strategy` shadows the trait name
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{AccessSession, Resolver, Sign, Strategy};

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    AddSubject,
    /// Membership (group_ix, member_ix) — indices into created subjects,
    /// skipped if they'd alias or the edge is invalid.
    AddMembership(usize, usize),
    Set(usize, u32, u32, bool),
    Unset(usize, u32, u32),
    SwitchStrategy(usize),
    Check(usize, u32, u32),
}

fn op_strategy() -> impl proptest::strategy::Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::AddSubject),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::AddMembership(a, b)),
        3 => (any::<usize>(), 0u32..3, 0u32..2, any::<bool>())
            .prop_map(|(s, o, r, g)| Op::Set(s, o, r, g)),
        1 => (any::<usize>(), 0u32..3, 0u32..2).prop_map(|(s, o, r)| Op::Unset(s, o, r)),
        1 => (0usize..48).prop_map(Op::SwitchStrategy),
        6 => (any::<usize>(), 0u32..3, 0u32..2).prop_map(|(s, o, r)| Op::Check(s, o, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn session_never_serves_stale_answers(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let strategies = Strategy::all_instances();
        let mut session = AccessSession::empty("D-LP-".parse().unwrap());
        // Seed a few subjects so early ops have targets.
        for _ in 0..3 {
            session.add_subject();
        }
        let mut checks = 0usize;
        for op in ops {
            match op {
                Op::AddSubject => {
                    session.add_subject();
                }
                Op::AddMembership(a, b) => {
                    let n = session.hierarchy().subject_count();
                    let g = ucra::core::SubjectId::from_index(a % n);
                    let m = ucra::core::SubjectId::from_index(b % n);
                    // Cycles/duplicates/self-edges are legal to attempt.
                    let _ = session.add_membership(g, m);
                }
                Op::Set(s, o, r, grant) => {
                    let n = session.hierarchy().subject_count();
                    let subject = ucra::core::SubjectId::from_index(s % n);
                    let sign = if grant { Sign::Pos } else { Sign::Neg };
                    // Contradictions are legal to attempt.
                    let _ = session.set_authorization(subject, ObjectId(o), RightId(r), sign);
                }
                Op::Unset(s, o, r) => {
                    let n = session.hierarchy().subject_count();
                    let subject = ucra::core::SubjectId::from_index(s % n);
                    session.unset_authorization(subject, ObjectId(o), RightId(r));
                }
                Op::SwitchStrategy(ix) => {
                    session.set_strategy(strategies[ix]);
                }
                Op::Check(s, o, r) => {
                    checks += 1;
                    let n = session.hierarchy().subject_count();
                    let subject = ucra::core::SubjectId::from_index(s % n);
                    let cached = session
                        .check_traced(subject, ObjectId(o), RightId(r))
                        .unwrap();
                    let fresh = Resolver::new(session.hierarchy(), session.eacm())
                        .resolve_traced(subject, ObjectId(o), RightId(r), session.strategy())
                        .unwrap();
                    prop_assert_eq!(cached, fresh, "stale cache after mutations");
                }
            }
        }
        // The run exercised the cache if it checked anything at all.
        if checks > 0 {
            prop_assert!(session.stats().queries as usize >= checks);
        }
    }
}
