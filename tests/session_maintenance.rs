//! Differential testing of [`ucra::core::AccessSession`]'s cache
//! maintenance: apply a random sequence of mutations and queries, and
//! after every query compare the session's (cached) answer against a
//! fresh, cache-free resolver over the same state. Any stale-cache bug
//! shows up as a divergence.

use proptest::prelude::*;
use proptest::strategy::Strategy as _; // `ucra::core::Strategy` shadows the trait name
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{AccessSession, Resolver, Sign, Strategy};

/// The acceptance bar for incremental repair, measured on a realistic
/// enterprise hierarchy: a membership-heavy churn trace must never flush
/// the cache, and the total number of repaired rows must stay strictly
/// below the cost of rebuilding every cached table once.
#[test]
fn membership_churn_repairs_far_less_than_a_rebuild() {
    use ucra::workload::auth::assign_matrix;
    use ucra::workload::churn::{trace, ChurnConfig, ChurnOp};
    use ucra::workload::livelink::{livelink, LivelinkConfig};
    use ucra::workload::rng;

    let mut r = rng(42);
    let org = livelink(
        LivelinkConfig {
            groups: 150,
            roots: 4,
            users: 60,
            ..Default::default()
        },
        &mut r,
    );
    let eacm = assign_matrix(&org.hierarchy, 4, 1, 0.02, 0.3, &mut r);
    let strategy: Strategy = "D-LP-".parse().unwrap();
    let mut session = AccessSession::new(org.hierarchy.clone(), eacm.clone(), strategy);

    let ops = trace(
        ChurnConfig {
            ops: 400,
            update_share: 0.25,
            membership_share: 0.5,
            objects: 4,
            rights: 1,
            ..Default::default()
        },
        &org.users,
        &org.groups,
        &mut r,
    );
    let mut edge_edits = 0usize;
    for op in &ops {
        match *op {
            ChurnOp::Check {
                subject,
                object,
                right,
            } => {
                session.check(subject, object, right).unwrap();
            }
            ChurnOp::SetLabel {
                subject,
                object,
                right,
                sign,
            } => {
                if session
                    .set_authorization(subject, object, right, sign)
                    .is_err()
                {
                    session.unset_authorization(subject, object, right);
                    session
                        .set_authorization(subject, object, right, sign)
                        .unwrap();
                }
            }
            ChurnOp::UnsetLabel {
                subject,
                object,
                right,
            } => {
                session.unset_authorization(subject, object, right);
            }
            ChurnOp::AddMembership { group, member } => {
                if session.add_membership(group, member).is_ok() {
                    edge_edits += 1;
                }
            }
        }
    }
    assert!(
        edge_edits > 0,
        "trace must contain applied membership edits"
    );

    let stats = session.stats();
    assert_eq!(stats.full_invalidations, 0, "no membership edit may flush");
    assert!(
        stats.partial_repairs > 0,
        "edits with a warm cache must repair"
    );
    let cached_pairs = 4u64; // objects × rights in the trace
    let rebuild_cost = org.hierarchy.subject_count() as u64 * cached_pairs;
    assert!(
        stats.rows_repaired < rebuild_cost,
        "repaired {} rows; one full rebuild would cost {}",
        stats.rows_repaired,
        rebuild_cost
    );

    // And the repaired cache still answers exactly like a fresh resolver.
    let fresh = Resolver::new(session.hierarchy(), session.eacm());
    for &user in &org.users {
        for o in 0..4 {
            assert_eq!(
                session.check(user, ObjectId(o), RightId(0)).unwrap(),
                fresh
                    .resolve(user, ObjectId(o), RightId(0), strategy)
                    .unwrap(),
                "user {user} object {o}"
            );
        }
    }
}

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    AddSubject,
    /// Membership (group_ix, member_ix) — indices into created subjects,
    /// skipped if they'd alias or the edge is invalid.
    AddMembership(usize, usize),
    Set(usize, u32, u32, bool),
    Unset(usize, u32, u32),
    SwitchStrategy(usize),
    Check(usize, u32, u32),
}

fn op_strategy() -> impl proptest::strategy::Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::AddSubject),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::AddMembership(a, b)),
        3 => (any::<usize>(), 0u32..3, 0u32..2, any::<bool>())
            .prop_map(|(s, o, r, g)| Op::Set(s, o, r, g)),
        1 => (any::<usize>(), 0u32..3, 0u32..2).prop_map(|(s, o, r)| Op::Unset(s, o, r)),
        1 => (0usize..48).prop_map(Op::SwitchStrategy),
        6 => (any::<usize>(), 0u32..3, 0u32..2).prop_map(|(s, o, r)| Op::Check(s, o, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn session_never_serves_stale_answers(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let strategies = Strategy::all_instances();
        let mut session = AccessSession::empty("D-LP-".parse().unwrap());
        // Seed a few subjects so early ops have targets.
        for _ in 0..3 {
            session.add_subject();
        }
        let mut checks = 0usize;
        for op in ops {
            match op {
                Op::AddSubject => {
                    session.add_subject();
                }
                Op::AddMembership(a, b) => {
                    let n = session.hierarchy().subject_count();
                    let g = ucra::core::SubjectId::from_index(a % n);
                    let m = ucra::core::SubjectId::from_index(b % n);
                    // Cycles/duplicates/self-edges are legal to attempt.
                    let _ = session.add_membership(g, m);
                }
                Op::Set(s, o, r, grant) => {
                    let n = session.hierarchy().subject_count();
                    let subject = ucra::core::SubjectId::from_index(s % n);
                    let sign = if grant { Sign::Pos } else { Sign::Neg };
                    // Contradictions are legal to attempt.
                    let _ = session.set_authorization(subject, ObjectId(o), RightId(r), sign);
                }
                Op::Unset(s, o, r) => {
                    let n = session.hierarchy().subject_count();
                    let subject = ucra::core::SubjectId::from_index(s % n);
                    session.unset_authorization(subject, ObjectId(o), RightId(r));
                }
                Op::SwitchStrategy(ix) => {
                    session.set_strategy(strategies[ix]);
                }
                Op::Check(s, o, r) => {
                    checks += 1;
                    let n = session.hierarchy().subject_count();
                    let subject = ucra::core::SubjectId::from_index(s % n);
                    let cached = session
                        .check_traced(subject, ObjectId(o), RightId(r))
                        .unwrap();
                    let fresh = Resolver::new(session.hierarchy(), session.eacm())
                        .resolve_traced(subject, ObjectId(o), RightId(r), session.strategy())
                        .unwrap();
                    prop_assert_eq!(cached, fresh, "stale cache after mutations");
                }
            }
        }
        // The run exercised the cache if it checked anything at all.
        if checks > 0 {
            prop_assert!(session.stats().queries as usize >= checks);
        }

        // Final equivalence sweep: whatever state the interleaving left
        // behind, the (batched) session must agree with a fresh resolver
        // under every one of the 48 strategies. Two object/right pairs per
        // strategy keep the sweep affordable while still exercising the
        // batching path across pairs.
        for (ix, &strategy) in strategies.iter().enumerate() {
            session.set_strategy(strategy);
            let pairs = [
                (ObjectId(ix as u32 % 3), RightId(ix as u32 % 2)),
                (ObjectId((ix as u32 + 1) % 3), RightId((ix as u32 + 1) % 2)),
            ];
            let queries: Vec<_> = session
                .hierarchy()
                .subjects()
                .flat_map(|s| pairs.iter().map(move |&(o, r)| (s, o, r)))
                .collect();
            let batched = session.check_many(&queries).unwrap();
            let fresh = Resolver::new(session.hierarchy(), session.eacm());
            for (&(s, o, r), &got) in queries.iter().zip(&batched) {
                let want = fresh.resolve(s, o, r, strategy).unwrap();
                prop_assert_eq!(got, want, "strategy {} subject {}", strategy, s);
            }
        }

        // Hierarchy edits must have been absorbed by incremental repair:
        // the session never fell back to flushing the whole cache.
        prop_assert_eq!(session.stats().full_invalidations, 0);
    }
}
