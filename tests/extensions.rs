//! Integration tests for the implemented future-work extensions: mixed
//! subject/object hierarchies, propagation modes, and SoD constraints
//! interacting with strategies.

use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ucra::core::engine::counting::{self, PropagationMode};
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::objects::{mixed_histogram, resolve_mixed_sign, ObjectDag};
use ucra::core::{Eacm, Sign, Strategy, SubjectDag};

const READ: RightId = RightId(0);

fn random_world(n: usize, density: f64, label_rate: f64, seed: u64) -> (SubjectDag, Eacm) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                h.add_membership(ids[i], ids[j]).unwrap();
            }
        }
    }
    let mut eacm = Eacm::new();
    for &v in &ids {
        if rng.gen_bool(label_rate) {
            let sign = if rng.gen_bool(0.5) {
                Sign::Pos
            } else {
                Sign::Neg
            };
            eacm.set(v, ObjectId(0), READ, sign).unwrap();
        }
    }
    (h, eacm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With a trivial (single-object) hierarchy the mixed resolver is
    /// identical to the subject-only resolver, for every subject and
    /// strategy.
    #[test]
    fn mixed_degenerates_to_subject_only(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
        strategy_ix in 0usize..48,
    ) {
        let (h, eacm) = random_world(n, density, rate, seed);
        let mut objects = ObjectDag::new();
        let obj = objects.add_object();
        let strategy = Strategy::all_instances()[strategy_ix];
        let resolver = ucra::core::Resolver::new(&h, &eacm);
        for s in h.subjects() {
            prop_assert_eq!(
                resolve_mixed_sign(&h, &objects, &eacm, s, obj, READ, strategy).unwrap(),
                resolver.resolve(s, obj, READ, strategy).unwrap()
            );
        }
    }

    /// Mixed histograms respect a "transposition" sanity law: putting the
    /// label one step up the SUBJECT hierarchy or one step up the OBJECT
    /// hierarchy yields the same combined distance histogram.
    #[test]
    fn subject_and_object_distance_are_interchangeable(
        seed in any::<u64>(),
        pos in any::<bool>(),
    ) {
        let _ = seed;
        let sign = if pos { Sign::Pos } else { Sign::Neg };
        // subjects: g → alice; objects: folder → doc.
        let mut subjects = SubjectDag::new();
        let g = subjects.add_subject();
        let alice = subjects.add_subject();
        subjects.add_membership(g, alice).unwrap();
        let mut objects = ObjectDag::new();
        let folder = objects.add_object();
        let doc = objects.add_object();
        objects.add_containment(folder, doc).unwrap();

        // (a) label on (g, doc): subject-distance 1, object-distance 0.
        let mut ea = Eacm::new();
        ea.set(g, doc, READ, sign).unwrap();
        let ha = mixed_histogram(&subjects, &objects, &ea, alice, doc, READ).unwrap();
        // (b) label on (alice, folder): subject 0, object 1.
        let mut eb = Eacm::new();
        eb.set(alice, folder, READ, sign).unwrap();
        let hb = mixed_histogram(&subjects, &objects, &eb, alice, doc, READ).unwrap();
        // Both place one `sign` record at combined distance 1. Defaults
        // differ (g is an unlabeled root in (b)), so compare the sign
        // strata only.
        prop_assert_eq!(ha.at(1).get(ucra::core::Mode::from(sign)), 1);
        prop_assert_eq!(hb.at(1).get(ucra::core::Mode::from(sign)), 1);
    }
}

#[test]
fn propagation_modes_differ_only_when_labels_stack() {
    // root(+) → mid(unlabeled) → leaf: no stacking, all modes equal.
    let mut h = SubjectDag::new();
    let root = h.add_subject();
    let mid = h.add_subject();
    let leaf = h.add_subject();
    h.add_membership(root, mid).unwrap();
    h.add_membership(mid, leaf).unwrap();
    let mut eacm = Eacm::new();
    eacm.grant(root, ObjectId(0), READ).unwrap();
    let run = |eacm: &Eacm, m| counting::histogram(&h, eacm, leaf, ObjectId(0), READ, m).unwrap();
    assert_eq!(
        run(&eacm, PropagationMode::Both),
        run(&eacm, PropagationMode::SecondWins)
    );
    assert_eq!(
        run(&eacm, PropagationMode::Both),
        run(&eacm, PropagationMode::FirstWins)
    );

    // Now label mid too: the three modes diverge.
    eacm.deny(mid, ObjectId(0), READ).unwrap();
    let both = run(&eacm, PropagationMode::Both);
    let second = run(&eacm, PropagationMode::SecondWins);
    let first = run(&eacm, PropagationMode::FirstWins);
    assert_ne!(both, second);
    assert_ne!(both, first);
    assert_ne!(second, first);
    // Both: sees + at 2 and - at 1. Second: only - at 1. First: only + at 2.
    assert_eq!((both.at(2).pos, both.at(1).neg), (1, 1));
    assert_eq!((second.at(2).pos, second.at(1).neg), (0, 1));
    assert_eq!((first.at(2).pos, first.at(1).neg), (1, 0));
}

#[test]
fn sod_interacts_with_strategy_choice() {
    use ucra::core::constraints::{check_sod, SodConstraint};
    use ucra::core::EffectiveMatrix;
    // One auditor in both the payers and the approvers.
    let mut h = SubjectDag::new();
    let payers = h.add_subject();
    let approvers = h.add_subject();
    let auditor = h.add_subject();
    h.add_membership(payers, auditor).unwrap();
    h.add_membership(approvers, auditor).unwrap();
    let pay = (ObjectId(0), RightId(0));
    let approve = (ObjectId(0), RightId(1));
    let mut eacm = Eacm::new();
    eacm.grant(payers, pay.0, pay.1).unwrap();
    eacm.grant(approvers, approve.0, approve.1).unwrap();
    // Explicitly deny the auditor the approve right: most-specific saves
    // the constraint, majority-with-open-default breaks it.
    eacm.deny(auditor, approve.0, approve.1).unwrap();

    let constraint = SodConstraint::mutual_exclusion("pay-vs-approve", vec![pay, approve]);
    let strict =
        EffectiveMatrix::compute_for_pairs(&h, &eacm, "LP-".parse().unwrap(), &[pay, approve])
            .unwrap();
    assert!(check_sod(&h, &strict, std::slice::from_ref(&constraint)).is_empty());

    let lax =
        EffectiveMatrix::compute_for_pairs(&h, &eacm, "D+MP+".parse().unwrap(), &[pay, approve])
            .unwrap();
    let violations = check_sod(&h, &lax, std::slice::from_ref(&constraint));
    assert!(
        violations.iter().any(|v| v.subject == auditor),
        "open-default majority lets the auditor hold both: {violations:?}"
    );
}
