//! Golden tests: the paper's Tables 1–4, byte-for-byte against the
//! published values, on the reconstructed motivating example.

use ucra::core::engine::path_enum::{self, PropagateOptions};
use ucra::core::motivating::motivating_example;
use ucra::core::{DecisionLine, Mode, Resolver, Sign, Strategy};

/// Table 1: the six `allRights` rows of ⟨User, obj, read⟩.
#[test]
fn table_1_all_rights_of_user() {
    let ex = motivating_example();
    let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
    let mut rows: Vec<(u32, Mode)> = resolver
        .all_rights_records(ex.user, ex.obj, ex.read)
        .unwrap()
        .into_iter()
        .map(|r| (r.dis, r.mode))
        .collect();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            (1, Mode::Pos),
            (1, Mode::Neg),
            (1, Mode::Default),
            (2, Mode::Default),
            (3, Mode::Pos),
            (3, Mode::Default),
        ]
    );
}

/// Table 2: all 48 strategy instances on the motivating example.
#[test]
fn table_2_all_48_strategies() {
    let ex = motivating_example();
    let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
    let expected: &[(&str, Sign)] = &[
        // Column 1 of the paper's Table 2.
        ("D+LMP+", Sign::Pos),
        ("D+LMP-", Sign::Pos),
        ("D-LMP+", Sign::Neg),
        ("D-LMP-", Sign::Neg),
        ("D+GMP+", Sign::Pos),
        ("D+GMP-", Sign::Pos),
        ("D-GMP+", Sign::Pos),
        ("D-GMP-", Sign::Neg),
        ("D+MP+", Sign::Pos),
        ("D+MP-", Sign::Pos),
        ("D-MP+", Sign::Neg),
        ("D-MP-", Sign::Neg),
        // Column 2.
        ("D+LP+", Sign::Pos),
        ("D+LP-", Sign::Neg),
        ("D-LP+", Sign::Pos),
        ("D-LP-", Sign::Neg),
        ("D+GP+", Sign::Pos),
        ("D+GP-", Sign::Pos),
        ("D-GP+", Sign::Pos),
        ("D-GP-", Sign::Neg),
        ("D+P+", Sign::Pos),
        ("D+P-", Sign::Neg),
        ("D-P+", Sign::Pos),
        ("D-P-", Sign::Neg),
        // Column 3.
        ("LMP+", Sign::Pos),
        ("LMP-", Sign::Neg),
        ("GMP+", Sign::Pos),
        ("GMP-", Sign::Pos),
        ("MP+", Sign::Pos),
        ("MP-", Sign::Pos),
        ("LP+", Sign::Pos),
        ("LP-", Sign::Neg),
        ("GP+", Sign::Pos),
        ("GP-", Sign::Pos),
        ("P+", Sign::Pos),
        ("P-", Sign::Neg),
        // Column 4.
        ("D+MLP+", Sign::Pos),
        ("D+MLP-", Sign::Pos),
        ("D-MLP+", Sign::Neg),
        ("D-MLP-", Sign::Neg),
        ("D+MGP+", Sign::Pos),
        ("D+MGP-", Sign::Pos),
        ("D-MGP+", Sign::Neg),
        ("D-MGP-", Sign::Neg),
        ("MLP+", Sign::Pos),
        ("MLP-", Sign::Pos),
        ("MGP+", Sign::Pos),
        ("MGP-", Sign::Pos),
    ];
    assert_eq!(expected.len(), 48);
    for &(mnemonic, want) in expected {
        let strategy: Strategy = mnemonic.parse().unwrap();
        let got = resolver
            .resolve(ex.user, ex.obj, ex.read, strategy)
            .unwrap();
        assert_eq!(got, want, "Table 2 mismatch for {mnemonic}");
    }
    // And the mnemonics cover every canonical instance exactly once.
    let mut parsed: Vec<Strategy> = expected.iter().map(|(m, _)| m.parse().unwrap()).collect();
    parsed.sort();
    parsed.dedup();
    assert_eq!(parsed.len(), 48);
}

/// Table 3: the traced runs for the paper's eight selected strategies.
#[test]
fn table_3_traces() {
    let ex = motivating_example();
    let resolver = Resolver::new(&ex.hierarchy, &ex.eacm);
    let run = |m: &str| {
        resolver
            .resolve_traced(ex.user, ex.obj, ex.read, m.parse().unwrap())
            .unwrap()
    };
    let both = || Some([Sign::Pos, Sign::Neg].into_iter().collect());

    let r = run("D+LMP+");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (Some(2), Some(1), None, Sign::Pos, DecisionLine::Majority)
    );
    let r = run("D-GMP-");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (
            Some(1),
            Some(1),
            both(),
            Sign::Neg,
            DecisionLine::Preference
        )
    );
    let r = run("D-MP-");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (Some(2), Some(4), None, Sign::Neg, DecisionLine::Majority)
    );
    let r = run("D-LP+");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (None, None, both(), Sign::Pos, DecisionLine::Preference)
    );
    let r = run("D+GP-");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (
            None,
            None,
            Some([Sign::Pos].into_iter().collect()),
            Sign::Pos,
            DecisionLine::Locality
        )
    );
    let r = run("GMP-");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (Some(1), Some(0), None, Sign::Pos, DecisionLine::Majority)
    );
    let r = run("P-");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (None, None, both(), Sign::Neg, DecisionLine::Preference)
    );
    // MGP-: the paper's table prints c1=1, c2=0 but Fig. 4 (and the §2.2
    // prose) give c1=2, c2=1 — same decision. We assert the Fig. 4 trace.
    let r = run("MGP-");
    assert_eq!(
        (r.c1, r.c2, r.auth.clone(), r.sign, r.line),
        (Some(2), Some(1), None, Sign::Pos, DecisionLine::Majority)
    );
}

/// Table 4: the full propagation relation P (15 rows, per subject).
#[test]
fn table_4_full_propagation() {
    let ex = motivating_example();
    let all = path_enum::propagate_all(
        &ex.hierarchy,
        &ex.eacm,
        ex.user,
        ex.obj,
        ex.read,
        PropagateOptions::default(),
    )
    .unwrap();
    let mut rows: Vec<(String, u32, Mode)> = Vec::new();
    for (subject, records) in &all {
        for r in records {
            rows.push((ex.name(*subject), r.dis, r.mode));
        }
    }
    rows.sort();
    let expect: Vec<(String, u32, Mode)> = [
        ("S1", 0, Mode::Default),
        ("S2", 0, Mode::Pos),
        ("S3", 1, Mode::Pos),
        ("S3", 1, Mode::Default),
        ("S5", 0, Mode::Neg),
        ("S5", 1, Mode::Default),
        ("S5", 2, Mode::Pos),
        ("S5", 2, Mode::Default),
        ("S6", 0, Mode::Default),
        ("User", 1, Mode::Pos),
        ("User", 1, Mode::Neg),
        ("User", 1, Mode::Default),
        ("User", 2, Mode::Default),
        ("User", 3, Mode::Pos),
        ("User", 3, Mode::Default),
    ]
    .into_iter()
    .map(|(n, d, m)| (n.to_string(), d, m))
    .collect();
    let mut expect = expect;
    expect.sort();
    assert_eq!(rows, expect, "Table 4 rows");
}

/// The relational-algebra spec reproduces Table 1 identically.
#[test]
fn relational_spec_agrees_on_table_1() {
    use ucra::relational::spec;
    let ex = motivating_example();
    let edges: Vec<(i64, i64)> = ex
        .hierarchy
        .graph()
        .edges()
        .map(|(p, c)| (p.index() as i64, c.index() as i64))
        .collect();
    let entries: Vec<(i64, i64, i64, spec::Sign)> = ex
        .eacm
        .iter()
        .map(|(s, o, r, sign)| {
            let sign = match sign {
                Sign::Pos => spec::Sign::Pos,
                Sign::Neg => spec::Sign::Neg,
            };
            (s.index() as i64, o.0 as i64, r.0 as i64, sign)
        })
        .collect();
    let sdag = spec::sdag_relation(&edges);
    let eacm = spec::eacm_relation(&entries);
    let all = spec::propagate(&sdag, &eacm, ex.user.index() as i64, 0, 0).unwrap();
    let mut rows: Vec<(i64, String)> = all
        .rows()
        .map(|r| (r[3].as_int().unwrap(), r[4].as_text().unwrap().to_string()))
        .collect();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            (1, "+".to_string()),
            (1, "-".to_string()),
            (1, "d".to_string()),
            (2, "d".to_string()),
            (3, "+".to_string()),
            (3, "d".to_string()),
        ]
    );
}
