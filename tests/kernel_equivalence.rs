//! Columnar fused-sweep kernel equivalence: on random DAG worlds the
//! arena-backed kernel must be bag-equivalent to
//!
//! * `path_enum::propagate` (the paper-faithful Fig. 5 engine) and
//! * the legacy BTreeMap sweep (`counting::histograms_all_reference`)
//!
//! under **all three** propagation modes, and resolution straight from
//! the arena must match `resolve_histogram` for **all 48** strategies.
//! The flat-arena ↔ `DistanceHistogram` round-trip must be lossless, and
//! the deduplicating parallel driver must equal the sequential one.

use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ucra::core::engine::counting::{self, PropagationMode};
use ucra::core::engine::path_enum::{self, PropagateOptions};
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{
    resolve_histogram, DistanceHistogram, Eacm, EffectiveMatrix, FusedSweep, Sign, Strategy,
    SubjectDag, SweepContext, SweepScratch, PARALLEL_WORK_THRESHOLD,
};

const MODES: [PropagationMode; 3] = [
    PropagationMode::Both,
    PropagationMode::SecondWins,
    PropagationMode::FirstWins,
];

/// A random DAG world with labels spread over `pairs` distinct
/// `(object, right)` columns, built deterministically from the scalars.
fn world(
    n: usize,
    density: f64,
    label_rate: f64,
    pairs: usize,
    seed: u64,
) -> (SubjectDag, Eacm, Vec<(ObjectId, RightId)>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                h.add_membership(ids[i], ids[j]).unwrap();
            }
        }
    }
    let cols: Vec<(ObjectId, RightId)> = (0..pairs)
        .map(|i| (ObjectId((i / 2) as u32), RightId((i % 2) as u32)))
        .collect();
    let mut eacm = Eacm::new();
    for &(o, r) in &cols {
        for &v in &ids {
            if rng.gen_bool(label_rate) {
                let sign = if rng.gen_bool(0.5) {
                    Sign::Pos
                } else {
                    Sign::Neg
                };
                eacm.set(v, o, r, sign).unwrap();
            }
        }
    }
    (h, eacm, cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fused kernel's histograms equal the per-path engine's under
    /// every propagation mode.
    #[test]
    fn fused_matches_path_enum_in_every_mode(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, 1, seed);
        let (o, r) = cols[0];
        for mode in MODES {
            let fused = FusedSweep::compute(&h, &eacm, &[(o, r)], mode).unwrap();
            for s in h.subjects() {
                let recs = path_enum::propagate(
                    &h, &eacm, s, o, r,
                    PropagateOptions { mode, ..Default::default() },
                ).unwrap();
                let from_paths = DistanceHistogram::from_records(&recs).unwrap();
                prop_assert_eq!(
                    &fused.histogram(s, 0), &from_paths,
                    "mode {:?} subject {}", mode, s
                );
            }
        }
    }

    /// Multi-column fused batches equal one legacy BTreeMap sweep per
    /// column, under every propagation mode.
    #[test]
    fn fused_matches_legacy_sweep_multi_column(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.5,
        pairs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        for mode in MODES {
            let fused = FusedSweep::compute(&h, &eacm, &cols, mode).unwrap();
            for (c, &(o, r)) in cols.iter().enumerate() {
                let legacy = counting::histograms_all_reference(&h, &eacm, o, r, mode).unwrap();
                prop_assert_eq!(
                    fused.table(c), legacy,
                    "mode {:?} column {}", mode, c
                );
            }
        }
    }

    /// Resolving straight from the arena equals `resolve_histogram` on
    /// the materialised histogram for all 48 strategy instances.
    #[test]
    fn arena_resolution_matches_all_48_strategies(
        n in 1usize..10,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, 2, seed);
        let fused = FusedSweep::compute(&h, &eacm, &cols, PropagationMode::Both).unwrap();
        for c in 0..cols.len() {
            for s in h.subjects() {
                let hist = fused.histogram(s, c);
                for strategy in Strategy::all_instances() {
                    prop_assert_eq!(
                        fused.resolve(s, c, strategy).unwrap(),
                        resolve_histogram(&hist, strategy).unwrap(),
                        "subject {} column {} strategy {}", s, c, strategy
                    );
                }
            }
        }
    }

    /// Arena ↔ `DistanceHistogram` conversion is lossless both ways.
    #[test]
    fn arena_round_trip_is_lossless(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.6,
        pairs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let fused = FusedSweep::compute(&h, &eacm, &cols, PropagationMode::Both).unwrap();
        let tables = fused.clone().into_tables();
        let packed = FusedSweep::from_columns(&tables);
        prop_assert_eq!(packed.clone().into_tables(), tables.clone());
        // And the unpacked tables are exactly the legacy sweeps.
        for (c, &(o, r)) in cols.iter().enumerate() {
            let legacy = counting::histograms_all_reference(
                &h, &eacm, o, r, PropagationMode::Both,
            ).unwrap();
            prop_assert_eq!(&tables[c], &legacy, "column {}", c);
        }
    }

    /// The deduplicating drivers: duplicates in the pair list change
    /// nothing, and the parallel work-stealing driver equals the
    /// sequential one.
    #[test]
    fn dedup_and_parallel_drivers_agree(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.5,
        pairs in 1usize..5,
        dup_factor in 1usize..4,
        threads in 1usize..5,
        strategy_ix in 0usize..48,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let strategy = Strategy::all_instances()[strategy_ix];
        let duplicated: Vec<_> = cols.iter().cycle().take(cols.len() * dup_factor).copied().collect();
        let seq = EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &cols).unwrap();
        let seq_dup = EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &duplicated).unwrap();
        let par = EffectiveMatrix::compute_for_pairs_parallel(
            &h, &eacm, strategy, &duplicated, threads,
        ).unwrap();
        prop_assert_eq!(&seq, &seq_dup);
        prop_assert_eq!(&seq, &par);
    }

    /// A [`SweepContext`] built once and a [`SweepScratch`] recycled
    /// across every call produce bit-identical tables to the one-shot
    /// `FusedSweep::compute`, under every propagation mode.
    #[test]
    fn shared_context_and_scratch_match_one_shot_in_every_mode(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.5,
        pairs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let one_shot = FusedSweep::compute(&h, &eacm, &cols, mode).unwrap();
            let shared = FusedSweep::compute_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            let tables = shared.clone().into_tables();
            prop_assert_eq!(one_shot.into_tables(), tables, "mode {:?}", mode);
            shared.recycle(&mut scratch);
        }
    }
}

proptest! {
    // Large worlds (fewer cases): `subjects * pairs` crosses
    // PARALLEL_WORK_THRESHOLD and the pair count exceeds one batch, so
    // on hosts with 2+ cores the parallel driver genuinely fans
    // full-width batches out to the persistent pool instead of taking
    // the serial fallback (the driver clamps worker grants to
    // `available_parallelism`, so on a 1-core host this degenerates to
    // the serial path — CI's multi-core runners cover the pooled one).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Above the work threshold the pooled driver over a shared sweep
    /// context equals the serial `compute_for_pairs`.
    #[test]
    fn parallel_driver_matches_serial_above_work_threshold(
        n in 120usize..160,
        density in 0.0f64..0.08,
        rate in 0.0f64..0.3,
        pairs in 9usize..16,
        threads in 2usize..5,
        strategy_ix in 0usize..48,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        // By construction: 120 subjects x 9 pairs = 1080 cells minimum.
        prop_assert!(n * cols.len() >= PARALLEL_WORK_THRESHOLD);
        let strategy = Strategy::all_instances()[strategy_ix];
        let seq = EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &cols).unwrap();
        let par = EffectiveMatrix::compute_for_pairs_parallel(
            &h, &eacm, strategy, &cols, threads,
        ).unwrap();
        prop_assert_eq!(&seq, &par, "threads {}", threads);
    }
}
