//! Columnar fused-sweep kernel equivalence: on random DAG worlds the
//! arena-backed kernel must be bag-equivalent to
//!
//! * `path_enum::propagate` (the paper-faithful Fig. 5 engine) and
//! * the legacy BTreeMap sweep (`counting::histograms_all_reference`)
//!
//! under **all three** propagation modes, and resolution straight from
//! the arena must match `resolve_histogram` for **all 48** strategies.
//! The flat-arena ↔ `DistanceHistogram` round-trip must be lossless, and
//! the deduplicating parallel driver must equal the sequential one.

use proptest::prelude::*;
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ucra::core::engine::counting::{self, PropagationMode};
use ucra::core::engine::path_enum::{self, PropagateOptions};
use ucra::core::engine::simd::Backend;
use ucra::core::ids::SubjectId;
use ucra::core::ids::{ObjectId, RightId};
use ucra::core::{
    resolve_histogram, AccessSession, DistanceHistogram, Eacm, EffectiveMatrix, FusedSweep,
    RepairPlan, Sign, Strategy, SubjectDag, SweepContext, SweepScratch, PARALLEL_WORK_THRESHOLD,
};

const MODES: [PropagationMode; 3] = [
    PropagationMode::Both,
    PropagationMode::SecondWins,
    PropagationMode::FirstWins,
];

/// A random DAG world with labels spread over `pairs` distinct
/// `(object, right)` columns, built deterministically from the scalars.
fn world(
    n: usize,
    density: f64,
    label_rate: f64,
    pairs: usize,
    seed: u64,
) -> (SubjectDag, Eacm, Vec<(ObjectId, RightId)>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                h.add_membership(ids[i], ids[j]).unwrap();
            }
        }
    }
    let cols: Vec<(ObjectId, RightId)> = (0..pairs)
        .map(|i| (ObjectId((i / 2) as u32), RightId((i % 2) as u32)))
        .collect();
    let mut eacm = Eacm::new();
    for &(o, r) in &cols {
        for &v in &ids {
            if rng.gen_bool(label_rate) {
                let sign = if rng.gen_bool(0.5) {
                    Sign::Pos
                } else {
                    Sign::Neg
                };
                eacm.set(v, o, r, sign).unwrap();
            }
        }
    }
    (h, eacm, cols)
}

/// A sparsified world for the pruning tests: few labels per column,
/// optionally confined to sinks (`placement == 0`) or roots
/// (`placement == 1`), with the final column always zero-label — the
/// three textures where the label-cone restriction does real work.
fn sparse_world(
    n: usize,
    density: f64,
    placement: usize,
    labels_per_col: usize,
    seed: u64,
) -> (SubjectDag, Eacm, Vec<(ObjectId, RightId)>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = SubjectDag::with_capacity(n);
    let ids = h.add_subjects(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(density) {
                h.add_membership(ids[i], ids[j]).unwrap();
            }
        }
    }
    let mut has_parent = vec![false; n];
    let mut has_child = vec![false; n];
    for (g, v) in h.graph().edges() {
        has_child[g.index()] = true;
        has_parent[v.index()] = true;
    }
    let pool: Vec<SubjectId> = ids
        .iter()
        .copied()
        .filter(|v| match placement {
            0 => !has_child[v.index()],  // sinks only
            1 => !has_parent[v.index()], // roots only
            _ => true,
        })
        .collect();
    let cols = vec![
        (ObjectId(0), RightId(0)),
        (ObjectId(0), RightId(1)),
        (ObjectId(1), RightId(0)), // stays zero-label
    ];
    let mut eacm = Eacm::new();
    for &(o, r) in &cols[..2] {
        for _ in 0..labels_per_col {
            let v = pool[rng.gen_range(0..pool.len())];
            let sign = if rng.gen_bool(0.5) {
                Sign::Pos
            } else {
                Sign::Neg
            };
            // A re-picked subject may already hold the opposite sign;
            // keeping the first label is fine for these tests.
            let _ = eacm.set(v, o, r, sign);
        }
    }
    (h, eacm, cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fused kernel's histograms equal the per-path engine's under
    /// every propagation mode.
    #[test]
    fn fused_matches_path_enum_in_every_mode(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.7,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, 1, seed);
        let (o, r) = cols[0];
        for mode in MODES {
            let fused = FusedSweep::compute(&h, &eacm, &[(o, r)], mode).unwrap();
            for s in h.subjects() {
                let recs = path_enum::propagate(
                    &h, &eacm, s, o, r,
                    PropagateOptions { mode, ..Default::default() },
                ).unwrap();
                let from_paths = DistanceHistogram::from_records(&recs).unwrap();
                prop_assert_eq!(
                    &fused.histogram(s, 0), &from_paths,
                    "mode {:?} subject {}", mode, s
                );
            }
        }
    }

    /// Multi-column fused batches equal one legacy BTreeMap sweep per
    /// column, under every propagation mode.
    #[test]
    fn fused_matches_legacy_sweep_multi_column(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.5,
        pairs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        for mode in MODES {
            let fused = FusedSweep::compute(&h, &eacm, &cols, mode).unwrap();
            for (c, &(o, r)) in cols.iter().enumerate() {
                let legacy = counting::histograms_all_reference(&h, &eacm, o, r, mode).unwrap();
                prop_assert_eq!(
                    fused.table(c), legacy,
                    "mode {:?} column {}", mode, c
                );
            }
        }
    }

    /// Resolving straight from the arena equals `resolve_histogram` on
    /// the materialised histogram for all 48 strategy instances.
    #[test]
    fn arena_resolution_matches_all_48_strategies(
        n in 1usize..10,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, 2, seed);
        let fused = FusedSweep::compute(&h, &eacm, &cols, PropagationMode::Both).unwrap();
        for c in 0..cols.len() {
            for s in h.subjects() {
                let hist = fused.histogram(s, c);
                for strategy in Strategy::all_instances() {
                    prop_assert_eq!(
                        fused.resolve(s, c, strategy).unwrap(),
                        resolve_histogram(&hist, strategy).unwrap(),
                        "subject {} column {} strategy {}", s, c, strategy
                    );
                }
            }
        }
    }

    /// Arena ↔ `DistanceHistogram` conversion is lossless both ways.
    #[test]
    fn arena_round_trip_is_lossless(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.6,
        pairs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let fused = FusedSweep::compute(&h, &eacm, &cols, PropagationMode::Both).unwrap();
        let tables = fused.clone().into_tables();
        let packed = FusedSweep::from_columns(&tables);
        prop_assert_eq!(packed.clone().into_tables(), tables.clone());
        // And the unpacked tables are exactly the legacy sweeps.
        for (c, &(o, r)) in cols.iter().enumerate() {
            let legacy = counting::histograms_all_reference(
                &h, &eacm, o, r, PropagationMode::Both,
            ).unwrap();
            prop_assert_eq!(&tables[c], &legacy, "column {}", c);
        }
    }

    /// The deduplicating drivers: duplicates in the pair list change
    /// nothing, and the parallel work-stealing driver equals the
    /// sequential one.
    #[test]
    fn dedup_and_parallel_drivers_agree(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.5,
        pairs in 1usize..5,
        dup_factor in 1usize..4,
        threads in 1usize..5,
        strategy_ix in 0usize..48,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let strategy = Strategy::all_instances()[strategy_ix];
        let duplicated: Vec<_> = cols.iter().cycle().take(cols.len() * dup_factor).copied().collect();
        let seq = EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &cols).unwrap();
        let seq_dup = EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &duplicated).unwrap();
        let par = EffectiveMatrix::compute_for_pairs_parallel(
            &h, &eacm, strategy, &duplicated, threads,
        ).unwrap();
        prop_assert_eq!(&seq, &seq_dup);
        prop_assert_eq!(&seq, &par);
    }

    /// A [`SweepContext`] built once and a [`SweepScratch`] recycled
    /// across every call produce bit-identical tables to the one-shot
    /// `FusedSweep::compute`, under every propagation mode.
    #[test]
    fn shared_context_and_scratch_match_one_shot_in_every_mode(
        n in 1usize..12,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.5,
        pairs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let one_shot = FusedSweep::compute(&h, &eacm, &cols, mode).unwrap();
            let shared = FusedSweep::compute_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            let tables = shared.clone().into_tables();
            prop_assert_eq!(one_shot.into_tables(), tables, "mode {:?}", mode);
            shared.recycle(&mut scratch);
        }
    }
}

proptest! {
    // Large worlds (fewer cases): `subjects * pairs` crosses
    // PARALLEL_WORK_THRESHOLD and the pair count exceeds one batch, so
    // on hosts with 2+ cores the parallel driver genuinely fans
    // full-width batches out to the persistent pool instead of taking
    // the serial fallback (the driver clamps worker grants to
    // `available_parallelism`, so on a 1-core host this degenerates to
    // the serial path — CI's multi-core runners cover the pooled one).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Above the work threshold the pooled driver over a shared sweep
    /// context equals the serial `compute_for_pairs`.
    #[test]
    fn parallel_driver_matches_serial_above_work_threshold(
        n in 120usize..160,
        density in 0.0f64..0.08,
        rate in 0.0f64..0.3,
        pairs in 9usize..16,
        threads in 2usize..5,
        strategy_ix in 0usize..48,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        // By construction: 120 subjects x 9 pairs = 1080 cells minimum.
        prop_assert!(n * cols.len() >= PARALLEL_WORK_THRESHOLD);
        let strategy = Strategy::all_instances()[strategy_ix];
        let seq = EffectiveMatrix::compute_for_pairs(&h, &eacm, strategy, &cols).unwrap();
        let par = EffectiveMatrix::compute_for_pairs_parallel(
            &h, &eacm, strategy, &cols, threads,
        ).unwrap();
        prop_assert_eq!(&seq, &par, "threads {}", threads);
    }
}

proptest! {
    // The sparsity-pruning equivalences: fewer cases, each checks all
    // 48 strategies under all 3 modes.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On sparse worlds — labels confined to sinks, to roots, or spread
    /// at random, and always one zero-label column — the pruned sweep
    /// must be bag-equivalent to the forced dense walk and the per-path
    /// Fig. 5 engine, and sign-identical for all 48 strategies, in all
    /// three propagation modes.
    #[test]
    fn pruned_sweep_matches_dense_walk_and_path_enum_on_sparse_worlds(
        n in 16usize..40,
        density in 0.0f64..0.15,
        placement in 0usize..3,
        labels in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = sparse_world(n, density, placement, labels, seed);
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let pruned = FusedSweep::compute_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            let dense =
                FusedSweep::compute_dense_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            for (c, _) in cols.iter().enumerate() {
                prop_assert_eq!(
                    pruned.table(c), dense.table(c),
                    "mode {:?} column {} placement {}", mode, c, placement
                );
                for strategy in Strategy::all_instances() {
                    prop_assert_eq!(
                        pruned.signs(c, strategy).unwrap(),
                        dense.signs(c, strategy).unwrap(),
                        "mode {:?} column {} strategy {}", mode, c, strategy
                    );
                }
            }
            // Close the triangle against the paper-faithful engine on
            // the labeled first column and the zero-label last column.
            for c in [0, cols.len() - 1] {
                let (o, r) = cols[c];
                for s in h.subjects() {
                    let recs = path_enum::propagate(
                        &h, &eacm, s, o, r,
                        PropagateOptions { mode, ..Default::default() },
                    ).unwrap();
                    prop_assert_eq!(
                        pruned.histogram(s, c),
                        DistanceHistogram::from_records(&recs).unwrap(),
                        "mode {:?} column {} subject {}", mode, c, s
                    );
                }
            }
            dense.recycle(&mut scratch);
            pruned.recycle(&mut scratch);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cone repair after a random label-edit sequence equals
    /// flush-and-recompute, row for row, in every propagation mode.
    #[test]
    fn label_edit_cone_repair_matches_full_recompute(
        n in 1usize..14,
        density in 0.0f64..0.5,
        rate in 0.0f64..0.5,
        edits in 1usize..10,
        seed in any::<u64>(),
    ) {
        let (h, mut eacm, cols) = world(n, density, rate, 1, seed);
        let (o, r) = cols[0];
        let ids: Vec<SubjectId> = h.subjects().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut tables: Vec<Vec<DistanceHistogram>> = MODES
            .iter()
            .map(|&m| counting::histograms_all(&h, &eacm, o, r, m).unwrap())
            .collect();
        for _ in 0..edits {
            let v = ids[rng.gen_range(0..ids.len())];
            eacm.unset(v, o, r);
            if rng.gen_bool(0.6) {
                let sign = if rng.gen_bool(0.5) { Sign::Pos } else { Sign::Neg };
                eacm.set(v, o, r, sign).unwrap();
            }
            let plan = RepairPlan::for_label_edit(&h, v);
            for (mi, &mode) in MODES.iter().enumerate() {
                counting::histograms_repair(
                    &h, &eacm, o, r, mode, &mut tables[mi], plan.dirty(),
                ).unwrap();
                let fresh = counting::histograms_all(&h, &eacm, o, r, mode).unwrap();
                prop_assert_eq!(
                    &tables[mi], &fresh,
                    "repair diverged from recompute after editing {} (mode {:?})", v, mode
                );
            }
        }
    }

    /// A live session absorbing random matrix edits keeps answering
    /// exactly like a from-scratch computation over the edited matrix,
    /// without ever flushing a cached table (cone repair only).
    #[test]
    fn session_matrix_edits_repair_cones_and_never_flush(
        n in 1usize..14,
        density in 0.0f64..0.5,
        rate in 0.0f64..0.5,
        edits in 1usize..10,
        strategy_ix in 0usize..48,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, 2, seed);
        let strategy = Strategy::all_instances()[strategy_ix];
        let mut session = AccessSession::new(h.clone(), eacm.clone(), strategy);
        let mut shadow = eacm;
        // Warm every pair's cached table so the edits exercise repair.
        let queries: Vec<_> = h
            .subjects()
            .flat_map(|s| cols.iter().map(move |&(o, r)| (s, o, r)))
            .collect();
        session.check_many(&queries).unwrap();
        let ids: Vec<SubjectId> = h.subjects().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5bd1_e995);
        for _ in 0..edits {
            let v = ids[rng.gen_range(0..ids.len())];
            let (o, r) = cols[rng.gen_range(0..cols.len())];
            session.unset_authorization(v, o, r);
            shadow.unset(v, o, r);
            if rng.gen_bool(0.6) {
                let sign = if rng.gen_bool(0.5) { Sign::Pos } else { Sign::Neg };
                session.set_authorization(v, o, r, sign).unwrap();
                shadow.set(v, o, r, sign).unwrap();
            }
        }
        let expected = EffectiveMatrix::compute_for_pairs(&h, &shadow, strategy, &cols).unwrap();
        for s in h.subjects() {
            for &(o, r) in &cols {
                prop_assert_eq!(
                    session.check(s, o, r).unwrap(),
                    expected.sign(s, o, r).unwrap(),
                    "subject {} pair ({}, {})", s, o, r
                );
            }
        }
        let stats = session.stats();
        prop_assert_eq!(stats.full_invalidations, 0, "matrix edits must never flush all");
        prop_assert_eq!(stats.pair_invalidations, 0, "matrix edits must repair, not flush");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tiered arena: the default (narrow `u64` lane) sweep must be
    /// bag-equivalent to the forced wide `u128` oracle
    /// (`compute_wide_with`) and sign-identical for all 48 strategies,
    /// in all three propagation modes. Random worlds never approach the
    /// saturation ceiling, so the auto path must also actually stay in
    /// the narrow tier — otherwise this test would be comparing wide
    /// against wide and proving nothing.
    #[test]
    fn narrow_tier_matches_forced_wide_oracle_all_strategies(
        n in 1usize..14,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.6,
        pairs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let auto = FusedSweep::compute_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            prop_assert!(auto.is_narrow(), "mode {:?}: tiny counts must stay narrow", mode);
            prop_assert!(!auto.escalated(), "mode {:?}", mode);
            let wide =
                FusedSweep::compute_wide_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            prop_assert!(!wide.is_narrow() && !wide.escalated(), "mode {:?}", mode);
            for c in 0..cols.len() {
                prop_assert_eq!(
                    auto.table(c), wide.table(c),
                    "mode {:?} column {}", mode, c
                );
                for strategy in Strategy::all_instances() {
                    prop_assert_eq!(
                        auto.signs(c, strategy).unwrap(),
                        wide.signs(c, strategy).unwrap(),
                        "mode {:?} column {} strategy {}", mode, c, strategy
                    );
                }
            }
            wide.recycle(&mut scratch);
            auto.recycle(&mut scratch);
        }
    }

    /// Same equivalence on the sparse worlds where the pruned sweep
    /// merges shared default rows — the narrow tier reads the packed
    /// `u64` default planes while the wide oracle reads the `u128`
    /// originals, and they must agree everywhere.
    #[test]
    fn pruned_narrow_tier_matches_forced_wide_oracle(
        n in 16usize..40,
        density in 0.0f64..0.15,
        placement in 0usize..3,
        labels in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = sparse_world(n, density, placement, labels, seed);
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let auto = FusedSweep::compute_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            prop_assert!(auto.is_narrow(), "mode {:?}", mode);
            let wide =
                FusedSweep::compute_wide_with(&ctx, &eacm, &cols, mode, &mut scratch).unwrap();
            for c in 0..cols.len() {
                prop_assert_eq!(
                    auto.table(c), wide.table(c),
                    "mode {:?} column {} placement {}", mode, c, placement
                );
            }
            wide.recycle(&mut scratch);
            auto.recycle(&mut scratch);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The runtime-dispatched SIMD backends: every backend the host
    /// supports must produce tables bit-identical to the forced-scalar
    /// oracle (`compute_with_backend(.., Backend::Scalar)`) and
    /// sign-identical for all 48 strategies, in all three propagation
    /// modes. On hosts without SSE2/AVX2 the loop degenerates to
    /// scalar-vs-scalar, which is vacuous there but keeps the test
    /// portable; CI's x86_64 runners exercise the real lanes.
    #[test]
    fn every_supported_backend_matches_scalar_oracle(
        n in 1usize..14,
        density in 0.0f64..0.6,
        rate in 0.0f64..0.6,
        pairs in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = world(n, density, rate, pairs, seed);
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let oracle = FusedSweep::compute_with_backend(
                &ctx, &eacm, &cols, mode, &mut scratch, Backend::Scalar,
            ).unwrap();
            for backend in Backend::ALL {
                if !backend.is_supported() || backend == Backend::Scalar {
                    continue;
                }
                let simd = FusedSweep::compute_with_backend(
                    &ctx, &eacm, &cols, mode, &mut scratch, backend,
                ).unwrap();
                prop_assert_eq!(simd.is_narrow(), oracle.is_narrow(), "mode {:?}", mode);
                for c in 0..cols.len() {
                    prop_assert_eq!(
                        simd.table(c), oracle.table(c),
                        "backend {} mode {:?} column {}", backend, mode, c
                    );
                    for strategy in Strategy::all_instances() {
                        prop_assert_eq!(
                            simd.signs(c, strategy).unwrap(),
                            oracle.signs(c, strategy).unwrap(),
                            "backend {} mode {:?} column {} strategy {}",
                            backend, mode, c, strategy
                        );
                    }
                }
                simd.recycle(&mut scratch);
            }
            oracle.recycle(&mut scratch);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same backend sweep on the sparse worlds, where the pruned path's
    /// packed-label reads and shared default-rows merge run through the
    /// dispatched kernels — every supported backend must match the
    /// scalar oracle table-for-table in all three modes.
    #[test]
    fn every_supported_backend_matches_scalar_on_sparse_worlds(
        n in 16usize..40,
        density in 0.0f64..0.15,
        placement in 0usize..3,
        labels in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (h, eacm, cols) = sparse_world(n, density, placement, labels, seed);
        let ctx = SweepContext::new(&h);
        let mut scratch = SweepScratch::new();
        for mode in MODES {
            let oracle = FusedSweep::compute_with_backend(
                &ctx, &eacm, &cols, mode, &mut scratch, Backend::Scalar,
            ).unwrap();
            for backend in Backend::ALL {
                if !backend.is_supported() || backend == Backend::Scalar {
                    continue;
                }
                let simd = FusedSweep::compute_with_backend(
                    &ctx, &eacm, &cols, mode, &mut scratch, backend,
                ).unwrap();
                for c in 0..cols.len() {
                    prop_assert_eq!(
                        simd.table(c), oracle.table(c),
                        "backend {} mode {:?} column {} placement {}",
                        backend, mode, c, placement
                    );
                }
                simd.recycle(&mut scratch);
            }
            oracle.recycle(&mut scratch);
        }
    }
}

/// `depth` stacked diamonds: `2^depth` paths from the first node to the
/// last, each of length `2 * depth` — the path-doubling shape that
/// drives counts past any fixed-width lane.
fn diamond_stack(depth: usize) -> (SubjectDag, SubjectId, SubjectId) {
    let mut h = SubjectDag::new();
    let mut top = h.add_subject();
    let first = top;
    for _ in 0..depth {
        let l = h.add_subject();
        let r = h.add_subject();
        let bottom = h.add_subject();
        h.add_membership(top, l).unwrap();
        h.add_membership(top, r).unwrap();
        h.add_membership(l, bottom).unwrap();
        h.add_membership(r, bottom).unwrap();
        top = bottom;
    }
    (h, first, top)
}

/// Forced escalation is lossless: 70 stacked diamonds push `2^70` paths
/// past the narrow `u64` ceiling (but well inside `u128`), so the auto
/// sweep must escalate and produce exactly the forced-wide tables —
/// histograms and all 48 strategies' signs — in every propagation mode.
#[test]
fn forced_escalation_is_lossless_for_all_strategies() {
    let (h, first, bottom) = diamond_stack(70);
    let (o, r) = (ObjectId(0), RightId(0));
    let mut eacm = Eacm::new();
    eacm.grant(first, o, r).unwrap();
    let ctx = SweepContext::new(&h);
    let mut scratch = SweepScratch::new();
    for mode in MODES {
        let auto = FusedSweep::compute_with(&ctx, &eacm, &[(o, r)], mode, &mut scratch).unwrap();
        assert!(auto.escalated(), "mode {mode:?}: 2^70 must escalate");
        assert!(!auto.is_narrow(), "mode {mode:?}");
        let wide =
            FusedSweep::compute_wide_with(&ctx, &eacm, &[(o, r)], mode, &mut scratch).unwrap();
        assert_eq!(auto.table(0), wide.table(0), "mode {mode:?}");
        for strategy in Strategy::all_instances() {
            assert_eq!(
                auto.signs(0, strategy).unwrap(),
                wide.signs(0, strategy).unwrap(),
                "mode {mode:?} strategy {strategy}"
            );
        }
        wide.recycle(&mut scratch);
        auto.recycle(&mut scratch);
    }
    // The counts genuinely exceeded u64: exactly 2^70 positive paths.
    let fused =
        FusedSweep::compute_with(&ctx, &eacm, &[(o, r)], PropagationMode::Both, &mut scratch)
            .unwrap();
    assert_eq!(fused.histogram(bottom, 0).at(140).pos, 1u128 << 70);
}

/// The narrow→wide escalation trips at the identical site under every
/// supported backend: 70 stacked diamonds must escalate whether the
/// narrow lanes were merged by scalar, SSE2 or AVX2 code (the SIMD adds
/// wrap exactly like `wrapping_add`, so the saturation check sees the
/// same lane values), and the escaped wide tables must be bit-identical
/// to the scalar run's — including the exact `2^70` positive count.
#[test]
fn escalation_site_is_backend_invariant() {
    let (h, first, bottom) = diamond_stack(70);
    let (o, r) = (ObjectId(0), RightId(0));
    let mut eacm = Eacm::new();
    eacm.grant(first, o, r).unwrap();
    let ctx = SweepContext::new(&h);
    let mut scratch = SweepScratch::new();
    for mode in MODES {
        let oracle = FusedSweep::compute_with_backend(
            &ctx,
            &eacm,
            &[(o, r)],
            mode,
            &mut scratch,
            Backend::Scalar,
        )
        .unwrap();
        assert!(
            oracle.escalated(),
            "mode {mode:?}: 2^70 must escalate under scalar"
        );
        for backend in Backend::ALL {
            if !backend.is_supported() || backend == Backend::Scalar {
                continue;
            }
            let simd = FusedSweep::compute_with_backend(
                &ctx,
                &eacm,
                &[(o, r)],
                mode,
                &mut scratch,
                backend,
            )
            .unwrap();
            assert!(
                simd.escalated(),
                "mode {mode:?}: 2^70 must escalate under {backend}"
            );
            assert_eq!(
                simd.table(0),
                oracle.table(0),
                "mode {mode:?} backend {backend}"
            );
            assert_eq!(
                simd.histogram(bottom, 0).at(140).pos,
                1u128 << 70,
                "mode {mode:?} backend {backend}"
            );
            simd.recycle(&mut scratch);
        }
        oracle.recycle(&mut scratch);
    }
}

/// `PathCountOverflow` fires identically under every supported backend:
/// 128 diamonds overflow `u128` after escalation, and the surfaced
/// error must match the scalar run's exactly (the wide tier itself is
/// backend-independent, but the narrow attempt that precedes it runs
/// the dispatched kernels up to the escalation point).
#[test]
fn overflow_error_is_backend_invariant() {
    let (h, first, _) = diamond_stack(128);
    let (o, r) = (ObjectId(0), RightId(0));
    let mut eacm = Eacm::new();
    eacm.grant(first, o, r).unwrap();
    let ctx = SweepContext::new(&h);
    let mut scratch = SweepScratch::new();
    for mode in MODES {
        let oracle = FusedSweep::compute_with_backend(
            &ctx,
            &eacm,
            &[(o, r)],
            mode,
            &mut scratch,
            Backend::Scalar,
        );
        let oracle_err = oracle.unwrap_err().to_string();
        for backend in Backend::ALL {
            if !backend.is_supported() || backend == Backend::Scalar {
                continue;
            }
            let simd = FusedSweep::compute_with_backend(
                &ctx,
                &eacm,
                &[(o, r)],
                mode,
                &mut scratch,
                backend,
            );
            assert_eq!(
                simd.unwrap_err().to_string(),
                oracle_err,
                "mode {mode:?} backend {backend}"
            );
        }
    }
}

/// `PathCountOverflow` fires at the identical site in both tiers: 128
/// diamonds overflow even `u128`, and the escalation machinery must
/// surface the wide tier's error unchanged.
#[test]
fn overflow_sites_are_identical_across_tiers() {
    let (h, first, _) = diamond_stack(128);
    let (o, r) = (ObjectId(0), RightId(0));
    let mut eacm = Eacm::new();
    eacm.grant(first, o, r).unwrap();
    let ctx = SweepContext::new(&h);
    let mut scratch = SweepScratch::new();
    for mode in MODES {
        let auto = FusedSweep::compute_with(&ctx, &eacm, &[(o, r)], mode, &mut scratch);
        let wide = FusedSweep::compute_wide_with(&ctx, &eacm, &[(o, r)], mode, &mut scratch);
        assert_eq!(auto, wide, "mode {mode:?}");
        assert_eq!(
            auto.unwrap_err().to_string(),
            wide.unwrap_err().to_string(),
            "mode {mode:?}"
        );
    }
}
