//! Integration: the named store layer, text and JSON persistence, and
//! agreement with the core resolver across formats.

use ucra::core::{Sign, Strategy};
use ucra::store::{text, AccessModel};

const POLICY: &str = r"
# Motivating example, as an administrator would write it.
member S1 S3
member S2 S3
member S2 User
member S3 S5
member S5 User
member S6 S5
member S6 User
grant S2 obj read
deny  S5 obj read
strategy D-LP-
";

#[test]
fn text_json_text_round_trip_preserves_all_48_decisions() {
    let model = text::parse(POLICY).unwrap();
    let as_json = model.to_json();
    let from_json = AccessModel::from_json(&as_json).unwrap();
    let as_text = text::render(&from_json);
    let back = text::parse(&as_text).unwrap();
    for strategy in Strategy::all_instances() {
        assert_eq!(
            back.check_with("User", "obj", "read", strategy).unwrap(),
            model.check_with("User", "obj", "read", strategy).unwrap(),
            "strategy {strategy}"
        );
    }
}

#[test]
fn configured_strategy_drives_check() {
    let model = text::parse(POLICY).unwrap();
    assert_eq!(model.default_strategy().unwrap().mnemonic(), "D-LP-");
    assert_eq!(model.check("User", "obj", "read").unwrap(), Sign::Neg);
}

#[test]
fn strategy_swap_is_one_line() {
    let mut model = text::parse(POLICY).unwrap();
    model.set_default_strategy("D+LMP+".parse().unwrap());
    assert_eq!(model.check("User", "obj", "read").unwrap(), Sign::Pos);
}

#[test]
fn effective_matrix_from_named_model() {
    use ucra::core::EffectiveMatrix;
    let model = text::parse(POLICY).unwrap();
    let matrix =
        EffectiveMatrix::compute(model.hierarchy(), model.eacm(), "D-LP-".parse().unwrap())
            .unwrap();
    let user = model.subject_id("User").unwrap();
    let obj = model.object_id("obj").unwrap();
    let read = model.right_id("read").unwrap();
    assert_eq!(matrix.sign(user, obj, read), Some(Sign::Neg));
    // Every subject gets a definite effective value.
    for s in model.hierarchy().subjects() {
        assert!(matrix.sign(s, obj, read).is_some());
    }
}

#[test]
fn memo_resolver_agrees_with_named_checks() {
    let model = text::parse(POLICY).unwrap();
    let memo = model.memo_resolver();
    let user = model.subject_id("User").unwrap();
    let obj = model.object_id("obj").unwrap();
    let read = model.right_id("read").unwrap();
    for strategy in Strategy::all_instances() {
        assert_eq!(
            memo.resolve(user, obj, read, strategy).unwrap(),
            model.check_with("User", "obj", "read", strategy).unwrap()
        );
    }
}
